package results

// Shape assertions: the paper's qualitative claims (DESIGN.md §3's
// "shape targets") as predicates over result rows. A Violation means a
// refactor broke one of the reproduction's headline shapes — the
// ordering of systems, BSD's livelock collapse, NI-LRP's flat overload
// curve, LRP's fair worker share, traffic separation — even though the
// code still builds and runs. `lrpbench check` runs the full suite
// through CheckSuite and exits non-zero on any violation; thresholds
// are calibrated to hold in both quick and full-length runs.

import "fmt"

// Violation is one failed shape assertion.
type Violation struct {
	Experiment string `json:"experiment"`
	Check      string `json:"check"`
	Detail     string `json:"detail"`
}

func (v Violation) String() string {
	return v.Experiment + ": " + v.Check + ": " + v.Detail
}

// checker accumulates violations for one experiment.
type checker struct {
	exp string
	out []Violation
}

func (c *checker) failf(check, format string, args ...any) {
	c.out = append(c.out, Violation{Experiment: c.exp, Check: check, Detail: fmt.Sprintf(format, args...)})
}

// assert records a violation when cond is false.
func (c *checker) assert(cond bool, check, format string, args ...any) {
	if !cond {
		c.failf(check, format, args...)
	}
}

// SuiteExperiments lists the experiment names CheckSuite expects, in
// canonical order.
var SuiteExperiments = []string{
	"table1", "fig3", "mlfrr", "fig4", "table2", "fig5", "ablations", "media",
}

// CheckSuite verifies every paper shape across a full suite. Missing
// experiments are themselves violations, so a truncated run cannot
// pass silently.
func CheckSuite(s *Suite) []Violation {
	var out []Violation
	for _, name := range SuiteExperiments {
		e := s.Find(name)
		if e == nil {
			out = append(out, Violation{Experiment: name, Check: "present", Detail: "experiment missing from suite"})
			continue
		}
		switch name {
		case "table1":
			out = append(out, CheckTable1(e.Table1)...)
		case "fig3":
			out = append(out, CheckFig3(e.Fig3)...)
		case "mlfrr":
			out = append(out, CheckMLFRR(e.MLFRR)...)
		case "fig4":
			out = append(out, CheckFig4(e.Fig4)...)
		case "table2":
			out = append(out, CheckTable2(e.Table2)...)
		case "fig5":
			out = append(out, CheckFig5(e.Fig5)...)
		case "ablations":
			out = append(out, CheckAblations(e.Ablations)...)
		case "media":
			out = append(out, CheckMedia(e.Media)...)
		}
	}
	// The fault robustness curves and the multi-core scaling sweep are
	// not part of the canonical suite (they run via `lrpbench faults` /
	// `lrpbench smp`), but when a suite carries them they are held to
	// their shapes too.
	if e := s.Find("faults"); e != nil {
		out = append(out, CheckFaults(e.Faults)...)
	}
	if e := s.Find("smp"); e != nil {
		out = append(out, CheckSMP(e.SMP)...)
	}
	if e := s.Find("wan"); e != nil {
		out = append(out, CheckWAN(e.WAN)...)
	}
	return out
}

// CheckTable1: LRP's basic performance is competitive — "improved
// overload behavior does not come at the cost of low-load performance"
// — and the vendor SunOS/Fore baseline trails on every metric.
func CheckTable1(rows []Table1Row) []Violation {
	c := &checker{exp: "table1"}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.System] = r
		c.assert(r.RTTMicros > 0 && r.UDPMbps > 0 && r.TCPMbps > 0,
			"positive", "degenerate row %+v", r)
	}
	fore, okF := byName["SunOS, Fore driver"]
	bsd, okB := byName["4.4 BSD"]
	ni, okN := byName["LRP (NI Demux)"]
	soft, okS := byName["LRP (Soft Demux)"]
	if !okF || !okB || !okN || !okS {
		c.failf("systems", "expected 4 systems, have %d rows", len(rows))
		return c.out
	}
	c.assert(fore.RTTMicros >= bsd.RTTMicros && fore.UDPMbps <= bsd.UDPMbps && fore.TCPMbps <= bsd.TCPMbps,
		"vendor-worst", "Fore driver should trail BSD on all metrics: %+v vs %+v", fore, bsd)
	for _, lrp := range []Table1Row{ni, soft} {
		c.assert(lrp.RTTMicros <= bsd.RTTMicros*1.1,
			"lrp-competitive-rtt", "%s RTT %.0f vs BSD %.0f", lrp.System, lrp.RTTMicros, bsd.RTTMicros)
		c.assert(lrp.UDPMbps >= bsd.UDPMbps*0.9 && lrp.TCPMbps >= bsd.TCPMbps*0.9,
			"lrp-competitive-tput", "%s throughput %+v vs BSD %+v", lrp.System, lrp, bsd)
	}
	return c.out
}

// fig3Stats summarizes one overload curve.
func fig3Stats(s Fig3Series) (peak, last float64) {
	for _, p := range s.Points {
		if p.Delivered > peak {
			peak = p.Delivered
		}
	}
	if n := len(s.Points); n > 0 {
		last = s.Points[n-1].Delivered
	}
	return
}

func findFig3(ss []Fig3Series, name string) (Fig3Series, bool) {
	for _, s := range ss {
		if s.System == name {
			return s, true
		}
	}
	return Fig3Series{}, false
}

// CheckFig3: the overload shapes — BSD collapses toward livelock,
// NI-LRP stays flat at its maximum, SOFT-LRP declines only gently,
// Early-Demux is stable but well below SOFT-LRP, and the Mogul &
// Ramakrishnan polling kernel is flat at a lower ceiling than NI-LRP.
func CheckFig3(series []Fig3Series) []Violation {
	c := &checker{exp: "fig3"}
	bsd, okB := findFig3(series, "4.4 BSD")
	ni, okN := findFig3(series, "NI-LRP")
	soft, okS := findFig3(series, "SOFT-LRP")
	ed, okE := findFig3(series, "Early-Demux")
	if !okB || !okN || !okS || !okE {
		c.failf("systems", "missing series among %d", len(series))
		return c.out
	}
	bsdPeak, bsdLast := fig3Stats(bsd)
	niPeak, niLast := fig3Stats(ni)
	softPeak, softLast := fig3Stats(soft)
	_, edLast := fig3Stats(ed)

	c.assert(bsdLast <= 0.25*bsdPeak,
		"bsd-collapse", "BSD did not collapse: peak %.0f, at 20k %.0f", bsdPeak, bsdLast)
	c.assert(niLast >= 0.95*niPeak,
		"ni-flat", "NI-LRP not flat under overload: peak %.0f, at 20k %.0f", niPeak, niLast)
	c.assert(softLast >= 0.55*softPeak,
		"soft-gradual", "SOFT-LRP declined too fast: peak %.0f, at 20k %.0f", softPeak, softLast)
	c.assert(niPeak > softPeak && softPeak > bsdPeak*0.99,
		"peak-order", "want NI > SOFT > ~BSD, have NI %.0f, SOFT %.0f, BSD %.0f", niPeak, softPeak, bsdPeak)
	c.assert(edLast >= 0.25*softLast && edLast <= 0.85*softLast,
		"early-demux-band", "Early-Demux at 20k = %.0f, want 25-85%% of SOFT-LRP's %.0f", edLast, softLast)

	if poll, ok := findFig3(series, "Polling (M&R)"); ok {
		pollPeak, pollLast := fig3Stats(poll)
		c.assert(pollLast >= 0.9*pollPeak,
			"polling-stable", "polling not stable: peak %.0f, at 20k %.0f", pollPeak, pollLast)
		c.assert(pollLast < niLast,
			"polling-below-ni", "polling (%.0f) should deliver less than NI-LRP (%.0f)", pollLast, niLast)
	}
	return c.out
}

// CheckMLFRR: "the MLFRR of SOFT-LRP exceeded that of 4.4BSD by 44%".
func CheckMLFRR(rows []MLFRRRow) []Violation {
	c := &checker{exp: "mlfrr"}
	var bsd, soft MLFRRRow
	for _, r := range rows {
		switch r.System {
		case "4.4 BSD":
			bsd = r
		case "SOFT-LRP":
			soft = r
		}
	}
	if bsd.MLFRR == 0 || soft.MLFRR == 0 {
		c.failf("scan", "MLFRR scan incomplete: %+v", rows)
		return c.out
	}
	c.assert(soft.MLFRR > bsd.MLFRR,
		"soft-exceeds-bsd", "SOFT-LRP MLFRR %d should exceed BSD's %d", soft.MLFRR, bsd.MLFRR)
	for _, r := range rows {
		c.assert(float64(r.MLFRR) <= r.Peak*1.05,
			"mlfrr-below-peak", "%s MLFRR %d above peak %.0f", r.System, r.MLFRR, r.Peak)
	}
	return c.out
}

// CheckFig4: BSD's latency explodes under background load (the
// mis-accounting hump), NI-LRP is barely affected, SOFT-LRP grows far
// less than BSD, and LRP's traffic separation never loses a probe.
func CheckFig4(series []Fig4Series) []Violation {
	c := &checker{exp: "fig4"}
	byName := map[string][]Fig4Point{}
	for _, s := range series {
		byName[s.System] = s.Points
	}
	bsd, ni, soft := byName["4.4 BSD"], byName["NI-LRP"], byName["SOFT-LRP"]
	if len(bsd) == 0 || len(ni) == 0 || len(soft) == 0 {
		c.failf("systems", "missing series among %d", len(series))
		return c.out
	}
	// Past some blast rate BSD loses every probe and the RTT is recorded
	// as 0 ("impossible to measure", per the paper) — growth is therefore
	// judged at the last *measurable* point of each curve.
	growth := func(pts []Fig4Point) float64 {
		last := pts[0].RTTMicros
		for _, p := range pts {
			if p.RTTMicros > 0 {
				last = p.RTTMicros
			}
		}
		return last / pts[0].RTTMicros
	}
	bsdG, niG, softG := growth(bsd), growth(ni), growth(soft)
	c.assert(bsdG >= 2, "bsd-latency-grows", "BSD latency should grow strongly under load: x%.2f", bsdG)
	c.assert(niG <= 1.5, "ni-unaffected", "NI-LRP latency should be barely affected: x%.2f", niG)
	c.assert(softG <= bsdG/1.5, "soft-below-bsd", "SOFT-LRP (x%.2f) should grow much less than BSD (x%.2f)", softG, bsdG)
	for _, s := range series {
		if s.System == "4.4 BSD" {
			continue
		}
		for _, p := range s.Points {
			c.assert(p.Lost == 0, "separation",
				"%s lost %d probes at bg=%d; separation broken", s.System, p.Lost, p.BgRate)
		}
	}
	return c.out
}

// CheckTable2: the worker completes fastest under NI-LRP and slowest
// under BSD at comparable RPC rates, and LRP holds the worker near the
// ideal 1/3 CPU share while BSD depresses it.
func CheckTable2(rows []Table2Row) []Violation {
	c := &checker{exp: "table2"}
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.System] = r
		c.assert(r.WorkerElapsed > 0, "worker-finished", "worker did not finish: %+v", r)
	}
	for _, wl := range []string{"Fast", "Medium", "Slow"} {
		bsd, okB := byKey[wl+"/4.4 BSD"]
		ni, okN := byKey[wl+"/NI-LRP"]
		soft, okS := byKey[wl+"/SOFT-LRP"]
		if !okB || !okN || !okS {
			c.failf("systems", "workload %s missing rows", wl)
			continue
		}
		c.assert(bsd.WorkerElapsed > ni.WorkerElapsed,
			"elapsed-order", "%s: BSD worker %.2fs should exceed NI-LRP %.2fs", wl, bsd.WorkerElapsed, ni.WorkerElapsed)
		c.assert(soft.WorkerElapsed <= bsd.WorkerElapsed,
			"soft-not-worst", "%s: SOFT-LRP %.2fs should not exceed BSD %.2fs", wl, soft.WorkerElapsed, bsd.WorkerElapsed)
		c.assert(bsd.WorkerShare < ni.WorkerShare,
			"share-order", "%s: BSD share %.3f should be below NI-LRP %.3f", wl, bsd.WorkerShare, ni.WorkerShare)
		// Fairness band: with three competing principals the ideal share
		// is 1/3; LRP's accounting keeps the worker in a band around it
		// ("29-33%" in the paper; our model lands a little above).
		for _, lrp := range []Table2Row{ni, soft} {
			c.assert(lrp.WorkerShare >= 0.28 && lrp.WorkerShare <= 0.45,
				"fair-band", "%s: %s worker share %.3f outside fair band [0.28, 0.45]", wl, lrp.System, lrp.WorkerShare)
		}
		c.assert(ni.ServerRPCRate >= bsd.ServerRPCRate*0.97,
			"rate-comparable", "%s: NI-LRP rate %.0f fell below BSD %.0f", wl, ni.ServerRPCRate, bsd.ServerRPCRate)
	}
	return c.out
}

// CheckFig5: under a SYN flood the BSD HTTP server collapses while
// SOFT-LRP keeps a large fraction of its unloaded throughput.
func CheckFig5(series []Fig5Series) []Violation {
	c := &checker{exp: "fig5"}
	byName := map[string][]Fig5Point{}
	for _, s := range series {
		byName[s.System] = s.Points
	}
	bsd, soft := byName["4.4 BSD"], byName["SOFT-LRP"]
	if len(bsd) == 0 || len(soft) == 0 {
		c.failf("systems", "missing series among %d", len(series))
		return c.out
	}
	c.assert(soft[0].HTTPPerSec >= bsd[0].HTTPPerSec*0.9,
		"unloaded-comparable", "unloaded: SOFT-LRP %.0f vs BSD %.0f", soft[0].HTTPPerSec, bsd[0].HTTPPerSec)
	bsdLast := bsd[len(bsd)-1].HTTPPerSec
	softLast := soft[len(soft)-1].HTTPPerSec
	c.assert(bsdLast <= 0.2*bsd[0].HTTPPerSec,
		"bsd-collapse", "BSD did not collapse under SYN flood: %.0f of %.0f", bsdLast, bsd[0].HTTPPerSec)
	c.assert(softLast >= 0.35*soft[0].HTTPPerSec,
		"soft-survives", "SOFT-LRP fell below ~half throughput: %.0f of %.0f", softLast, soft[0].HTTPPerSec)
	return c.out
}

// ablationValue finds one ablation measurement; missing rows are
// violations recorded on c.
func ablationValue(c *checker, rows []AblationRow, exp, variant, metric string) (float64, bool) {
	for _, r := range rows {
		if r.Experiment == exp && r.Variant == variant && r.Metric == metric {
			return r.Value, true
		}
	}
	c.failf("present", "missing ablation row %s/%s/%s", exp, variant, metric)
	return 0, false
}

// CheckAblations: each §3 design-choice isolation keeps its shape —
// the corrupt-packet flood starves Early-Demux but not LRP, idle-time
// processing shortens receive calls, bounded channels preserve traffic
// separation, and interpreted filter demux loses livelock protection.
func CheckAblations(rows []AblationRow) []Violation {
	c := &checker{exp: "ablations"}

	if ed, ok1 := ablationValue(c, rows, "corrupt-flood", "Early-Demux", "victim_cpu_share"); ok1 {
		if lrp, ok2 := ablationValue(c, rows, "corrupt-flood", "SOFT-LRP", "victim_cpu_share"); ok2 {
			c.assert(ed <= 0.3, "corrupt-starves-ed",
				"Early-Demux victim kept %.2f CPU; corrupt flood should starve it", ed)
			c.assert(lrp >= 2*ed, "corrupt-spares-lrp",
				"SOFT-LRP victim share %.2f not clearly above Early-Demux %.2f", lrp, ed)
		}
	}

	with, okW := ablationValue(c, rows, "idle-thread", "enabled", "recv_call_µs")
	without, okO := ablationValue(c, rows, "idle-thread", "disabled", "recv_call_µs")
	if okW && okO {
		c.assert(with < without, "idle-shortens-recv",
			"idle-time processing should shorten the recv call: %.0f vs %.0f µs", with, without)
	}

	lostB, ok1 := ablationValue(c, rows, "early-discard", "bounded-channel", "probes_lost")
	lostU, ok2 := ablationValue(c, rows, "early-discard", "unbounded-channel", "probes_lost")
	hwB, ok3 := ablationValue(c, rows, "early-discard", "bounded-channel", "mbuf_highwater")
	hwU, ok4 := ablationValue(c, rows, "early-discard", "unbounded-channel", "mbuf_highwater")
	if ok1 && ok2 && ok3 && ok4 {
		c.assert(lostB <= lostU/10+1, "separation-kept",
			"bounded channel lost %.0f probes vs unbounded %.0f", lostB, lostU)
		c.assert(lostU >= 10, "separation-broken-unbounded",
			"unbounded channel should lose many probes to pool exhaustion: %.0f", lostU)
		c.assert(hwU >= 10*hwB, "pool-pinned",
			"unbounded channel should pin far more mbufs: %.0f vs %.0f", hwU, hwB)
	}

	h1, ok5 := ablationValue(c, rows, "filter-demux", "hand-coded/1-sockets", "delivered_pps")
	h49, ok6 := ablationValue(c, rows, "filter-demux", "hand-coded/49-sockets", "delivered_pps")
	i1, ok7 := ablationValue(c, rows, "filter-demux", "interpreted/1-sockets", "delivered_pps")
	i49, ok8 := ablationValue(c, rows, "filter-demux", "interpreted/49-sockets", "delivered_pps")
	if ok5 && ok6 && ok7 && ok8 {
		c.assert(h49 >= h1*0.9, "handcoded-insensitive",
			"hand-coded demux degraded with endpoints: %.0f -> %.0f", h1, h49)
		c.assert(i49 <= i1/4, "interpreted-collapses",
			"interpreted demux should collapse with 49 endpoints: %.0f -> %.0f", i1, i49)
	}
	return c.out
}

// CheckMedia: unloaded, every system delivers with negligible jitter;
// under background blast BSD's bursts delay the stream while LRP's
// traffic separation keeps jitter far lower (NI-LRP near zero).
func CheckMedia(rows []MediaRow) []Violation {
	c := &checker{exp: "media"}
	get := func(system string, bg int64) (MediaRow, bool) {
		for _, r := range rows {
			if r.System == system && r.BgRate == bg {
				return r, true
			}
		}
		c.failf("present", "missing row %s/%d", system, bg)
		return MediaRow{}, false
	}
	for _, sys := range []string{"4.4 BSD", "NI-LRP", "SOFT-LRP"} {
		if r, ok := get(sys, 0); ok {
			c.assert(r.MeanJitterUs <= 20, "unloaded-quiet",
				"%s unloaded jitter %.0fµs", sys, r.MeanJitterUs)
		}
	}
	bsd, okB := get("4.4 BSD", 6000)
	ni, okN := get("NI-LRP", 6000)
	soft, okS := get("SOFT-LRP", 6000)
	if okB && okN && okS {
		c.assert(bsd.MeanJitterUs >= 3*ni.MeanJitterUs, "bsd-jitters",
			"BSD jitter %.0fµs not clearly above NI-LRP %.0fµs", bsd.MeanJitterUs, ni.MeanJitterUs)
		c.assert(soft.MeanJitterUs <= bsd.MeanJitterUs, "soft-below-bsd",
			"SOFT-LRP jitter %.0fµs above BSD %.0fµs", soft.MeanJitterUs, bsd.MeanJitterUs)
	}
	return c.out
}

// FaultImpairments lists the impairment curves a faults payload must
// carry: every pipeline fault kind, the three host-side fault classes,
// and the TCP-vs-reordering sweep.
var FaultImpairments = []string{
	"loss", "ge-loss", "reorder", "duplicate", "corrupt", "jitter", "flap",
	"ring-overrun", "spurious-intr", "pool-pressure", "tcp-reorder",
}

// faultEnds returns a series' unimpaired baseline and maximum-severity
// points.
func faultEnds(s FaultSeries) (base, last FaultPoint) {
	return s.Points[0], s.Points[len(s.Points)-1]
}

func findFaultSeries(cv FaultCurve, system string) (FaultSeries, bool) {
	for _, s := range cv.Series {
		if s.System == system {
			return s, true
		}
	}
	return FaultSeries{}, false
}

// CheckFaults verifies the robustness curves: structurally (every
// impairment present, aligned severity axes starting from an
// unimpaired baseline) and by shape — loss-like faults cut goodput
// roughly with their rate, reordering and jitter move latency but not
// goodput, and the per-architecture distinctions hold (NI demux is
// immune to host interrupt pressure that collapses BSD; LRP's receive
// path degrades least under TCP reordering; LRP's accounting keeps the
// victim's CPU share above BSD's).
func CheckFaults(curves []FaultCurve) []Violation {
	c := &checker{exp: "faults"}
	byImp := map[string]FaultCurve{}
	for _, cv := range curves {
		byImp[cv.Impairment] = cv
	}
	for _, name := range FaultImpairments {
		cv, ok := byImp[name]
		if !ok {
			c.failf("present", "impairment %q missing", name)
			continue
		}
		if !checkFaultShape(c, cv) {
			continue
		}
		checkFaultCurve(c, cv)
	}
	return c.out
}

// checkFaultShape verifies one curve's structure; further shape checks
// only run when it holds.
func checkFaultShape(c *checker, cv FaultCurve) bool {
	if cv.Axis == "" {
		c.failf("axis", "%s: empty severity-axis label", cv.Impairment)
	}
	if len(cv.Series) < 3 {
		c.failf("series", "%s: %d series, want one per system", cv.Impairment, len(cv.Series))
		return false
	}
	ref := cv.Series[0].Points
	if len(ref) < 2 {
		c.failf("points", "%s: %d sweep points, want at least baseline + one severity", cv.Impairment, len(ref))
		return false
	}
	ok := true
	for _, s := range cv.Series {
		if len(s.Points) != len(ref) {
			c.failf("aligned", "%s: %s has %d points, %s has %d",
				cv.Impairment, s.System, len(s.Points), cv.Series[0].System, len(ref))
			ok = false
			continue
		}
		for i, p := range s.Points {
			if p.Severity != ref[i].Severity {
				c.failf("aligned", "%s: %s severity[%d]=%g, %s has %g",
					cv.Impairment, s.System, i, p.Severity, cv.Series[0].System, ref[i].Severity)
				ok = false
			}
		}
		c.assert(s.Points[0].Severity == 0, "baseline",
			"%s: %s first point severity %g, want an unimpaired 0 baseline",
			cv.Impairment, s.System, s.Points[0].Severity)
		for i := 1; i < len(s.Points); i++ {
			c.assert(s.Points[i].Severity > s.Points[i-1].Severity, "ascending",
				"%s: %s severities not ascending at point %d", cv.Impairment, s.System, i)
		}
	}
	return ok
}

// checkFaultCurve verifies one structurally-sound curve's measured
// shapes.
func checkFaultCurve(c *checker, cv FaultCurve) {
	if cv.Impairment == "tcp-reorder" {
		checkTCPReorder(c, cv)
		return
	}
	// UDP robustness rig: every baseline must carry near-full goodput
	// with a live victim and answered probes.
	for _, s := range cv.Series {
		base, _ := faultEnds(s)
		c.assert(base.GoodputPps >= 3500, "baseline-goodput",
			"%s: %s unimpaired goodput %.0f pkt/s, want near the 5000 pkt/s blast",
			cv.Impairment, s.System, base.GoodputPps)
		c.assert(base.VictimShare > 0 && base.VictimShare < 1, "victim-live",
			"%s: %s victim share %.2f outside (0,1)", cv.Impairment, s.System, base.VictimShare)
		c.assert(base.ProbesLost <= 2, "baseline-probes",
			"%s: %s lost %d probes unimpaired", cv.Impairment, s.System, base.ProbesLost)
		c.assert(base.P99Us > 0, "baseline-p99",
			"%s: %s baseline p99 %dµs not measured", cv.Impairment, s.System, base.P99Us)
	}
	switch cv.Impairment {
	case "loss", "ge-loss":
		// Max severity drops 40% of deliveries: goodput tracks 1-rate.
		for _, s := range cv.Series {
			base, last := faultEnds(s)
			frac := last.GoodputPps / base.GoodputPps
			c.assert(frac >= 0.45 && frac <= 0.75, "goodput-tracks-loss",
				"%s: %s goodput fraction %.2f at 40%% loss, want ~0.6", cv.Impairment, s.System, frac)
		}
	case "reorder":
		// Held-back packets still arrive: goodput unharmed, tail latency
		// absorbs the 1 ms hold-back.
		for _, s := range cv.Series {
			base, last := faultEnds(s)
			c.assert(last.GoodputPps >= 0.9*base.GoodputPps, "goodput-kept",
				"reorder: %s goodput fell %.0f -> %.0f", s.System, base.GoodputPps, last.GoodputPps)
			c.assert(last.P99Us >= base.P99Us+400, "p99-grows",
				"reorder: %s p99 %d -> %d µs, want ≥ +400 from the 1 ms hold-back",
				s.System, base.P99Us, last.P99Us)
		}
	case "duplicate":
		// Copies add load but deliveries survive.
		for _, s := range cv.Series {
			base, last := faultEnds(s)
			c.assert(last.GoodputPps >= 0.7*base.GoodputPps, "goodput-kept",
				"duplicate: %s goodput fell %.0f -> %.0f", s.System, base.GoodputPps, last.GoodputPps)
		}
	case "corrupt":
		// Corrupted packets reach the host but fail checksum: goodput
		// falls roughly with the corruption rate (0.5 at max severity).
		for _, s := range cv.Series {
			base, last := faultEnds(s)
			frac := last.GoodputPps / base.GoodputPps
			c.assert(frac <= 0.75, "goodput-falls",
				"corrupt: %s goodput fraction %.2f at 50%% corruption", s.System, frac)
		}
	case "jitter":
		for _, s := range cv.Series {
			base, last := faultEnds(s)
			c.assert(last.GoodputPps >= 0.9*base.GoodputPps, "goodput-kept",
				"jitter: %s goodput fell %.0f -> %.0f", s.System, base.GoodputPps, last.GoodputPps)
			c.assert(float64(last.P99Us) >= 0.6*last.Severity, "p99-absorbs-jitter",
				"jitter: %s p99 %dµs under a %gµs jitter bound", s.System, last.P99Us, last.Severity)
		}
	case "flap":
		// Down half the cycle ⇒ roughly half the goodput.
		for _, s := range cv.Series {
			base, last := faultEnds(s)
			frac := last.GoodputPps / base.GoodputPps
			c.assert(frac >= 0.35 && frac <= 0.65, "goodput-tracks-downtime",
				"flap: %s goodput fraction %.2f with the link down 50%% of the time", s.System, frac)
		}
	case "ring-overrun":
		for _, s := range cv.Series {
			base, last := faultEnds(s)
			frac := last.GoodputPps / base.GoodputPps
			c.assert(frac <= 0.75, "goodput-falls",
				"ring-overrun: %s goodput fraction %.2f at 50%% ring drops", s.System, frac)
		}
	case "spurious-intr":
		// The headline distinction: NI demux takes no host interrupts, so
		// interrupt pressure cannot touch it, while the interrupt-driven
		// kernels lose most of their goodput.
		if ni, ok := findFaultSeries(cv, "NI-LRP"); ok {
			base, last := faultEnds(ni)
			c.assert(last.GoodputPps >= 0.9*base.GoodputPps, "ni-immune",
				"spurious-intr: NI-LRP goodput fell %.0f -> %.0f; NI demux should be immune",
				base.GoodputPps, last.GoodputPps)
		} else {
			c.failf("systems", "spurious-intr: NI-LRP series missing")
		}
		if bsd, ok := findFaultSeries(cv, "4.4 BSD"); ok {
			base, last := faultEnds(bsd)
			c.assert(last.GoodputPps <= 0.6*base.GoodputPps, "bsd-collapses",
				"spurious-intr: BSD goodput %.0f of %.0f; interrupt pressure should collapse it",
				last.GoodputPps, base.GoodputPps)
		} else {
			c.failf("systems", "spurious-intr: 4.4 BSD series missing")
		}
	case "pool-pressure":
		// LRP allocates receive buffers early (at demux into per-socket
		// channels), so starving the pool must visibly hurt SOFT-LRP.
		if soft, ok := findFaultSeries(cv, "SOFT-LRP"); ok {
			base, last := faultEnds(soft)
			c.assert(last.GoodputPps <= 0.95*base.GoodputPps || last.ProbesLost > 0, "soft-feels-pressure",
				"pool-pressure: SOFT-LRP unaffected at max pressure (goodput %.0f of %.0f, %d probes lost)",
				last.GoodputPps, base.GoodputPps, last.ProbesLost)
		} else {
			c.failf("systems", "pool-pressure: SOFT-LRP series missing")
		}
	}
	// The paper's accounting claim, visible in every unimpaired baseline:
	// NI-LRP charges receive processing to the receiver, so the victim
	// keeps clearly more CPU than under BSD's interrupt-level processing.
	ni, okN := findFaultSeries(cv, "NI-LRP")
	bsd, okB := findFaultSeries(cv, "4.4 BSD")
	if okN && okB {
		c.assert(ni.Points[0].VictimShare >= bsd.Points[0].VictimShare+0.05, "victim-accounting",
			"%s: NI-LRP victim share %.2f not clearly above BSD's %.2f",
			cv.Impairment, ni.Points[0].VictimShare, bsd.Points[0].VictimShare)
	}
}

// checkTCPReorder verifies the TCP-vs-reordering sweep: everyone moves
// bytes unimpaired, deep reordering costs BSD's receive path the most,
// and LRP's stays close to its baseline.
func checkTCPReorder(c *checker, cv FaultCurve) {
	for _, s := range cv.Series {
		base, _ := faultEnds(s)
		c.assert(base.TCPMbps > 0, "baseline-tcp",
			"tcp-reorder: %s moved no bytes unimpaired", s.System)
	}
	bsd, okB := findFaultSeries(cv, "4.4 BSD")
	ni, okN := findFaultSeries(cv, "NI-LRP")
	soft, okS := findFaultSeries(cv, "SOFT-LRP")
	if !okB || !okN || !okS {
		c.failf("systems", "tcp-reorder: missing series among %d", len(cv.Series))
		return
	}
	bsdBase, bsdLast := faultEnds(bsd)
	c.assert(bsdLast.TCPMbps <= 0.8*bsdBase.TCPMbps, "bsd-degrades",
		"tcp-reorder: BSD kept %.1f of %.1f Mbit/s under deep reordering",
		bsdLast.TCPMbps, bsdBase.TCPMbps)
	for _, s := range []FaultSeries{ni, soft} {
		base, last := faultEnds(s)
		c.assert(last.TCPMbps >= 0.85*base.TCPMbps, "lrp-resilient",
			"tcp-reorder: %s kept only %.1f of %.1f Mbit/s", s.System, last.TCPMbps, base.TCPMbps)
		c.assert(last.TCPMbps > bsdLast.TCPMbps, "lrp-above-bsd",
			"tcp-reorder: %s %.1f Mbit/s not above BSD's %.1f", s.System, last.TCPMbps, bsdLast.TCPMbps)
	}
}

// CheckSMP: the multi-core scaling sweep's shapes. Single-queue receive
// serializes interrupt work on one CPU, so adding cores stops helping
// once that CPU saturates — visible as BSD's single-queue goodput
// ceiling. RSS multi-queue receive spreads flows across cores and
// scales until a different resource runs out: for NI-LRP that resource
// is the adaptor's embedded processor, which both queue modes share, so
// its curves flatten together. The uniprocessor cells must be bitwise
// mode-independent — with one core there is nothing to steer.
func CheckSMP(series []SMPSeries) []Violation {
	c := &checker{exp: "smp"}
	byMode := map[string]map[string]SMPSeries{}
	var systems []string
	for _, s := range series {
		if byMode[s.System] == nil {
			byMode[s.System] = map[string]SMPSeries{}
			systems = append(systems, s.System)
		}
		byMode[s.System][s.Queues] = s
	}
	for _, want := range []string{"4.4 BSD", "NI-LRP", "SOFT-LRP"} {
		if byMode[want] == nil {
			c.failf("systems", "system %q missing from the sweep", want)
		}
	}
	if len(c.out) > 0 {
		return c.out
	}
	ok := true
	for _, sys := range systems {
		for _, mode := range []string{"single", "multi"} {
			s, found := byMode[sys][mode]
			if !found {
				c.failf("series", "%s: %s-queue series missing", sys, mode)
				ok = false
				continue
			}
			if !checkSMPShape(c, s) {
				ok = false
			}
		}
	}
	if !ok {
		return c.out
	}
	for _, sys := range systems {
		checkSMPSystem(c, sys, byMode[sys]["single"], byMode[sys]["multi"])
	}
	checkSMPContrast(c, byMode)
	return c.out
}

// checkSMPShape verifies one series' structure; the cross-series shape
// checks only run when every series holds.
func checkSMPShape(c *checker, s SMPSeries) bool {
	name := s.System + "/" + s.Queues
	if len(s.Points) < 3 {
		c.failf("points", "%s: %d core counts, want at least 1, 2 and a larger M", name, len(s.Points))
		return false
	}
	if s.Points[0].Cores != 1 {
		c.failf("baseline", "%s: first point has %d cores, want a uniprocessor baseline", name, s.Points[0].Cores)
		return false
	}
	perCore := s.Points[0].OfferedPps
	for i, p := range s.Points {
		if i > 0 && p.Cores <= s.Points[i-1].Cores {
			c.failf("ascending", "%s: core counts not ascending at point %d", name, i)
			return false
		}
		c.assert(p.OfferedPps == perCore*int64(p.Cores), "offered-scales",
			"%s: %d cores offered %d pkt/s, want %d (one %d pkt/s flow per core)",
			name, p.Cores, p.OfferedPps, perCore*int64(p.Cores), perCore)
		c.assert(p.GoodputPps > 0, "goodput",
			"%s: no packets delivered at %d cores", name, p.Cores)
	}
	return true
}

// checkSMPSystem verifies one system's pair of curves against each
// other: bitwise-identical uniprocessor cells, quiet SMP counters at
// one core and live ones beyond it, and near-linear multi-queue scaling
// from one core to two.
func checkSMPSystem(c *checker, sys string, single, multi SMPSeries) {
	c.assert(single.Points[0] == multi.Points[0], "uniprocessor-identical",
		"%s: single-queue and multi-queue 1-core cells differ; with one core the modes must be indistinguishable", sys)
	for _, s := range []SMPSeries{single, multi} {
		name := s.System + "/" + s.Queues
		base := s.Points[0]
		c.assert(base.IPIs == 0 && base.RemoteWakes == 0 && base.Steals == 0 && base.Halts == 0,
			"uniprocessor-quiet",
			"%s: SMP counters nonzero at 1 core (ipis=%d wakes=%d steals=%d halts=%d)",
			name, base.IPIs, base.RemoteWakes, base.Steals, base.Halts)
		for _, p := range s.Points[1:] {
			c.assert(p.IPIs > 0 && p.RemoteWakes > 0, "cross-cpu-traffic",
				"%s: no cross-CPU wakeups at %d cores (ipis=%d wakes=%d)",
				name, p.Cores, p.IPIs, p.RemoteWakes)
			c.assert(p.RemoteWakes >= p.IPIs, "ipi-coalesced",
				"%s: %d IPIs delivered for %d remote wakeups at %d cores; the line coalesces, never amplifies",
				name, p.IPIs, p.RemoteWakes, p.Cores)
			c.assert(p.Halts > 0, "idle-halts",
				"%s: no idle halts at %d cores", name, p.Cores)
		}
	}
	two := multi.Points[1]
	c.assert(two.Cores == 2 && two.GoodputPps >= 1.8*multi.Points[0].GoodputPps, "multi-queue-scales",
		"%s: multi-queue goodput %.0f at 2 cores vs %.0f at 1; RSS should scale near-linearly below saturation",
		sys, two.GoodputPps, multi.Points[0].GoodputPps)
}

// checkSMPContrast verifies the headline cross-system shapes at the
// largest core count.
func checkSMPContrast(c *checker, byMode map[string]map[string]SMPSeries) {
	last := func(s SMPSeries) SMPPoint { return s.Points[len(s.Points)-1] }

	// BSD: the single shared interrupt CPU is the bottleneck — its
	// goodput hits a ceiling well under the offered load while RSS
	// steering keeps up with it.
	bsdS, bsdM := last(byMode["4.4 BSD"]["single"]), last(byMode["4.4 BSD"]["multi"])
	c.assert(bsdS.GoodputPps <= 0.85*float64(bsdS.OfferedPps), "bsd-single-ceiling",
		"BSD single-queue delivered %.0f of %d offered at %d cores; one interrupt CPU should not keep up",
		bsdS.GoodputPps, bsdS.OfferedPps, bsdS.Cores)
	c.assert(bsdM.GoodputPps >= 0.9*float64(bsdM.OfferedPps), "bsd-multi-keeps-up",
		"BSD multi-queue delivered %.0f of %d offered at %d cores", bsdM.GoodputPps, bsdM.OfferedPps, bsdM.Cores)
	c.assert(bsdM.GoodputPps >= 1.25*bsdS.GoodputPps, "bsd-contrast",
		"BSD multi-queue goodput %.0f not clearly above single-queue %.0f at %d cores",
		bsdM.GoodputPps, bsdS.GoodputPps, bsdM.Cores)

	// NI-LRP: demux runs on the adaptor's embedded processor, which does
	// not multiply with host cores. Both queue modes share that limit, so
	// at the largest core count the curves flatten together: well under
	// the offered load, well under linear scaling from 2 cores, and
	// within 10% of each other.
	niS, niM := last(byMode["NI-LRP"]["single"]), last(byMode["NI-LRP"]["multi"])
	niTwo := byMode["NI-LRP"]["multi"].Points[1]
	c.assert(niM.GoodputPps <= 0.8*float64(niM.OfferedPps), "ni-adaptor-saturates",
		"NI-LRP delivered %.0f of %d offered at %d cores; the embedded processor should saturate first",
		niM.GoodputPps, niM.OfferedPps, niM.Cores)
	c.assert(niM.GoodputPps <= 1.6*niTwo.GoodputPps, "ni-scaling-stops",
		"NI-LRP goodput %.0f at %d cores vs %.0f at 2; scaling should stop at the adaptor's limit",
		niM.GoodputPps, niM.Cores, niTwo.GoodputPps)
	hi, lo := niM.GoodputPps, niS.GoodputPps
	if lo > hi {
		hi, lo = lo, hi
	}
	c.assert(hi <= 1.1*lo, "ni-modes-converge",
		"NI-LRP single %.0f vs multi %.0f at %d cores; a shared adaptor limit should bind both modes",
		niS.GoodputPps, niM.GoodputPps, niM.Cores)

	// SOFT-LRP: stealing keeps goodput up even single-queue, so the
	// contrast shows in probe latency — spreading interrupt work off the
	// probe's CPU path keeps the tail down.
	softS, softM := last(byMode["SOFT-LRP"]["single"]), last(byMode["SOFT-LRP"]["multi"])
	c.assert(softS.P99Us > 0 && softM.P99Us > 0, "soft-probes-survive",
		"SOFT-LRP probes lost at %d cores (single p99=%d, multi p99=%d)", softM.Cores, softS.P99Us, softM.P99Us)
	if softS.P99Us > 0 && softM.P99Us > 0 {
		c.assert(softM.P99Us <= softS.P99Us, "soft-latency-contrast",
			"SOFT-LRP multi-queue p99 %dµs above single-queue %dµs at %d cores",
			softM.P99Us, softS.P99Us, softM.Cores)
	}
}

// CheckWAN: the paper's Fig 5 story holds at internet fan-in scale.
// Across every topology — direct LAN, a forwarding chain, a fan-in tree
// whose gateways run the same architecture as the server — BSD goodput
// collapses past saturation while LRP holds, with an aggregated
// population of at least a million modeled clients emitted by a bounded
// number of stackless procs.
func CheckWAN(series []WANSeries) []Violation {
	c := &checker{exp: "wan"}
	type cellKey struct{ topo, impaired string }
	cells := map[cellKey]map[string]WANSeries{}
	var order []cellKey
	topos := map[string]bool{}
	for _, s := range series {
		k := cellKey{s.Topology, s.Impaired}
		if cells[k] == nil {
			cells[k] = map[string]WANSeries{}
			order = append(order, k)
		}
		cells[k][s.System] = s
		if s.Impaired == "" {
			topos[s.Topology] = true
		}
	}
	if len(topos) < 3 {
		c.failf("topologies", "%d clean topologies, want at least 3 (direct, chain, fan-in)", len(topos))
		return c.out
	}
	ok := true
	for _, k := range order {
		cell := cells[k]
		name := k.topo
		if k.impaired != "" {
			name += "+" + k.impaired
		}
		for _, want := range []string{"4.4 BSD", "NI-LRP", "SOFT-LRP"} {
			s, found := cell[want]
			if !found {
				c.failf("systems", "%s: system %q missing", name, want)
				ok = false
				continue
			}
			if !checkWANShape(c, name, s) {
				ok = false
			}
		}
	}
	if !ok {
		return c.out
	}
	for _, k := range order {
		cell := cells[k]
		name := k.topo
		if k.impaired != "" {
			name += "+" + k.impaired
		}
		bsd, ni, soft := cell["4.4 BSD"], cell["NI-LRP"], cell["SOFT-LRP"]
		for i := range bsd.Points {
			c.assert(bsd.Points[i].OfferedPps == ni.Points[i].OfferedPps &&
				bsd.Points[i].OfferedPps == soft.Points[i].OfferedPps, "axis-aligned",
				"%s: offered axes diverge at point %d", name, i)
		}
		bLast := bsd.Points[len(bsd.Points)-1].GoodputPps
		for _, lrp := range []WANSeries{ni, soft} {
			pts := lrp.Points
			lLast := pts[len(pts)-1].GoodputPps
			c.assert(lLast >= bLast, "lrp-beats-bsd",
				"%s: %s final goodput %.0f below BSD's %.0f", name, lrp.System, lLast, bLast)
			if k.impaired != "" {
				continue // impaired cells: ordering only, goodput is loss-shaped
			}
			// No collapse: every point holds a floor against the peak seen
			// so far, and the final (most-overloaded) point holds one
			// against the overall peak. SOFT-LRP declines gently past
			// saturation (per-packet demux still costs softint cycles);
			// BSD falls off a cliff.
			peak := 0.0
			for _, p := range pts {
				if p.GoodputPps > peak {
					peak = p.GoodputPps
				}
				c.assert(p.GoodputPps >= 0.55*peak, "lrp-no-collapse",
					"%s: %s goodput %.0f at offered %d under 55%% of peak %.0f",
					name, lrp.System, p.GoodputPps, p.OfferedPps, peak)
			}
			c.assert(lLast >= 0.6*peak, "lrp-holds",
				"%s: %s final goodput %.0f vs peak %.0f; LRP must hold under overload",
				name, lrp.System, lLast, peak)
		}
		if k.impaired == "" {
			bPeak := 0.0
			for _, p := range bsd.Points {
				if p.GoodputPps > bPeak {
					bPeak = p.GoodputPps
				}
			}
			c.assert(bLast <= 0.5*bPeak, "bsd-collapses",
				"%s: BSD final goodput %.0f vs peak %.0f; eager processing should livelock past saturation",
				name, bLast, bPeak)
		}
	}
	return c.out
}

// checkWANShape verifies one series' structure: an ascending offered
// axis with enough points to see a cliff, a population of internet
// scale, and the aggregation contract (procs, not clients, bounded).
func checkWANShape(c *checker, cell string, s WANSeries) bool {
	name := cell + "/" + s.System
	ok := true
	if len(s.Points) < 3 {
		c.failf("points", "%s: %d offered-load points, want at least 3", name, len(s.Points))
		return false
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].OfferedPps <= s.Points[i-1].OfferedPps {
			c.failf("ascending", "%s: offered axis not ascending at point %d", name, i)
			return false
		}
	}
	if s.Clients < 1_000_000 {
		c.failf("population", "%s: %d modeled clients, want at least 1,000,000", name, s.Clients)
		ok = false
	}
	if s.Procs < 1 || s.Procs > 1024 {
		c.failf("aggregation", "%s: %d generator procs for %d clients; the population must aggregate into at most 1024 procs",
			name, s.Procs, s.Clients)
		ok = false
	}
	for _, p := range s.Points {
		if p.GoodputPps <= 0 {
			c.failf("goodput", "%s: no packets consumed at offered %d", name, p.OfferedPps)
			ok = false
		}
	}
	return ok
}
