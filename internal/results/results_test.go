package results

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleSuite builds a suite with one populated entry per experiment,
// exercising every row type and every field.
func sampleSuite() *Suite {
	s := NewSuite(42, true)
	s.Add(Experiment{Name: "table1", Table1: []Table1Row{
		{System: "4.4 BSD", RTTMicros: 348.25, UDPMbps: 78.8, TCPMbps: 71.7},
		{System: "LRP (Soft Demux)", RTTMicros: 314, UDPMbps: 80.4, TCPMbps: 71.1},
	}})
	s.Add(Experiment{Name: "fig3", Fig3: []Fig3Series{
		{System: "NI-LRP", Points: []Fig3Point{{Offered: 2000, Delivered: 2006.5}, {Offered: 20000, Delivered: 10753}}},
	}})
	s.Add(Experiment{Name: "mlfrr", MLFRR: []MLFRRRow{
		{System: "SOFT-LRP", MLFRR: 8250, Peak: 9072.25},
	}})
	s.Add(Experiment{Name: "fig4", Fig4: []Fig4Series{
		{System: "4.4 BSD", Points: []Fig4Point{{BgRate: 4000, RTTMicros: 812.5, Lost: 3}}},
	}})
	s.Add(Experiment{Name: "table2", Table2: []Table2Row{
		{Workload: "Fast", System: "NI-LRP", WorkerElapsed: 41.6, ServerRPCRate: 1814, WorkerShare: 0.355},
	}})
	s.Add(Experiment{Name: "fig5", Fig5: []Fig5Series{
		{System: "SOFT-LRP", Points: []Fig5Point{{SYNRate: 20000, HTTPPerSec: 52.5}}},
	}})
	s.Add(Experiment{Name: "ablations", Ablations: []AblationRow{
		{Experiment: "idle-thread", Variant: "enabled", Metric: "recv_call_µs", Value: 56},
	}})
	s.Add(Experiment{Name: "media", Media: []MediaRow{
		{System: "NI-LRP", BgRate: 6000, MeanJitterUs: 5.5, P99JitterUs: 8, FramesLost: 2},
	}})
	return s
}

func TestSuiteRoundTrip(t *testing.T) {
	s := sampleSuite()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", s, got)
	}
	// Every row type must survive the trip: the sample populates each
	// experiment, so DeepEqual above covers all of them; spot-check a
	// couple of deep fields to guard against tag typos that DeepEqual
	// alone would catch only via the sample.
	if got.Find("fig4").Fig4[0].Points[0].Lost != 3 {
		t.Error("fig4 Lost field lost in translation")
	}
	if got.Find("media").Media[0].P99JitterUs != 8 {
		t.Error("media P99 field lost in translation")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleSuite().Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleSuite().Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same suite differ")
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Error("encoding should end with a newline")
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	s := sampleSuite()
	s.Schema = SchemaVersion + 1
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestDecodeRejectsMismatchedPayload(t *testing.T) {
	s := NewSuite(1, false)
	// Payload filed under the wrong name.
	s.Add(Experiment{Name: "fig3", Table1: []Table1Row{{System: "x", RTTMicros: 1, UDPMbps: 1, TCPMbps: 1}}})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil {
		t.Fatal("mismatched payload should fail validation")
	}
	var buf2 bytes.Buffer
	s2 := NewSuite(1, false)
	s2.Add(Experiment{Name: "bogus"})
	if err := s2.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf2); err == nil {
		t.Fatal("unknown experiment name should fail validation")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage input should fail")
	}
	if _, err := Decode(strings.NewReader(`{"schema":1,"tool":"other"}`)); err == nil {
		t.Fatal("foreign tool tag should fail")
	}
}

func TestFind(t *testing.T) {
	s := sampleSuite()
	if s.Find("table2") == nil || s.Find("table2").Name != "table2" {
		t.Error("Find failed on present experiment")
	}
	if s.Find("nope") != nil {
		t.Error("Find invented an experiment")
	}
}
