package results

// The checks run against synthetic rows shaped like healthy and broken
// runs, so the predicate logic is tested in both directions without
// running any simulations.

import (
	"strings"
	"testing"
)

func wantClean(t *testing.T, vs []Violation) {
	t.Helper()
	if len(vs) != 0 {
		t.Fatalf("healthy data flagged: %v", vs)
	}
}

func wantViolation(t *testing.T, vs []Violation, check string) {
	t.Helper()
	for _, v := range vs {
		if v.Check == check {
			return
		}
	}
	t.Fatalf("expected violation %q, got %v", check, vs)
}

func goodTable1() []Table1Row {
	return []Table1Row{
		{System: "SunOS, Fore driver", RTTMicros: 468, UDPMbps: 52, TCPMbps: 49},
		{System: "4.4 BSD", RTTMicros: 348, UDPMbps: 79, TCPMbps: 72},
		{System: "LRP (NI Demux)", RTTMicros: 330, UDPMbps: 81, TCPMbps: 71},
		{System: "LRP (Soft Demux)", RTTMicros: 314, UDPMbps: 80, TCPMbps: 71},
	}
}

func TestCheckTable1(t *testing.T) {
	wantClean(t, CheckTable1(goodTable1()))

	bad := goodTable1()
	bad[3].RTTMicros = 600 // LRP latency no longer competitive
	wantViolation(t, CheckTable1(bad), "lrp-competitive-rtt")

	bad = goodTable1()
	bad[0].UDPMbps = 95 // vendor driver suddenly best
	wantViolation(t, CheckTable1(bad), "vendor-worst")

	wantViolation(t, CheckTable1(goodTable1()[:2]), "systems")
}

func curve(system string, vals ...float64) Fig3Series {
	s := Fig3Series{System: system}
	for i, v := range vals {
		s.Points = append(s.Points, Fig3Point{Offered: int64(2000 * (i + 1)), Delivered: v})
	}
	return s
}

func goodFig3() []Fig3Series {
	return []Fig3Series{
		curve("4.4 BSD", 2000, 8000, 3000, 100),
		curve("NI-LRP", 2000, 8000, 10700, 10700),
		curve("SOFT-LRP", 2000, 8000, 9000, 5800),
		curve("Early-Demux", 2000, 8000, 5500, 3500),
		curve("Polling (M&R)", 2000, 8000, 8000, 8000),
	}
}

func TestCheckFig3(t *testing.T) {
	wantClean(t, CheckFig3(goodFig3()))

	bad := goodFig3()
	bad[0] = curve("4.4 BSD", 2000, 8000, 7500, 7000) // BSD stays healthy: no livelock shape
	wantViolation(t, CheckFig3(bad), "bsd-collapse")

	bad = goodFig3()
	bad[1] = curve("NI-LRP", 2000, 8000, 10700, 9000) // NI-LRP droops
	wantViolation(t, CheckFig3(bad), "ni-flat")

	bad = goodFig3()
	bad[4] = curve("Polling (M&R)", 2000, 8000, 8000, 12000) // polling above NI-LRP
	wantViolation(t, CheckFig3(bad), "polling-below-ni")

	wantViolation(t, CheckFig3(goodFig3()[:2]), "systems")
}

func TestCheckMLFRR(t *testing.T) {
	good := []MLFRRRow{
		{System: "4.4 BSD", MLFRR: 7250, Peak: 8064},
		{System: "SOFT-LRP", MLFRR: 8250, Peak: 9072},
	}
	wantClean(t, CheckMLFRR(good))
	swapped := []MLFRRRow{
		{System: "4.4 BSD", MLFRR: 9000, Peak: 9500},
		{System: "SOFT-LRP", MLFRR: 8250, Peak: 9072},
	}
	wantViolation(t, CheckMLFRR(swapped), "soft-exceeds-bsd")
	wantViolation(t, CheckMLFRR(good[:1]), "scan")
}

func fig4Curve(system string, lost int, rtts ...float64) Fig4Series {
	s := Fig4Series{System: system}
	for i, v := range rtts {
		s.Points = append(s.Points, Fig4Point{BgRate: int64(4000 * i), RTTMicros: v, Lost: lost})
	}
	return s
}

func TestCheckFig4(t *testing.T) {
	good := []Fig4Series{
		fig4Curve("4.4 BSD", 0, 350, 600, 1200),
		fig4Curve("NI-LRP", 0, 330, 340, 350),
		fig4Curve("SOFT-LRP", 0, 320, 400, 500),
	}
	wantClean(t, CheckFig4(good))

	bad := []Fig4Series{good[0], fig4Curve("NI-LRP", 2, 330, 340, 350), good[2]}
	wantViolation(t, CheckFig4(bad), "separation")

	bad = []Fig4Series{fig4Curve("4.4 BSD", 0, 350, 360, 370), good[1], good[2]}
	wantViolation(t, CheckFig4(bad), "bsd-latency-grows")

	// Full-length runs drive BSD past the point where any probe survives;
	// those points record RTT 0 and must not zero out the growth factor.
	unmeasurable := fig4Curve("4.4 BSD", 0, 350, 600, 1200)
	unmeasurable.Points = append(unmeasurable.Points, Fig4Point{BgRate: 16000, RTTMicros: 0, Lost: 50})
	wantClean(t, CheckFig4([]Fig4Series{unmeasurable, good[1], good[2]}))
}

func goodTable2() []Table2Row {
	var rows []Table2Row
	for _, wl := range []string{"Fast", "Medium", "Slow"} {
		rows = append(rows,
			Table2Row{Workload: wl, System: "4.4 BSD", WorkerElapsed: 47.8, ServerRPCRate: 1784, WorkerShare: 0.315},
			Table2Row{Workload: wl, System: "NI-LRP", WorkerElapsed: 41.6, ServerRPCRate: 1814, WorkerShare: 0.355},
			Table2Row{Workload: wl, System: "SOFT-LRP", WorkerElapsed: 42.0, ServerRPCRate: 1805, WorkerShare: 0.353},
		)
	}
	return rows
}

func TestCheckTable2(t *testing.T) {
	wantClean(t, CheckTable2(goodTable2()))

	bad := goodTable2()
	bad[1].WorkerShare = 0.22 // NI-LRP outside the fairness band
	wantViolation(t, CheckTable2(bad), "fair-band")
	wantViolation(t, CheckTable2(bad), "share-order")

	bad = goodTable2()
	bad[0].WorkerElapsed = 30 // BSD suddenly fastest
	wantViolation(t, CheckTable2(bad), "elapsed-order")
}

func fig5Curve(system string, vals ...float64) Fig5Series {
	s := Fig5Series{System: system}
	for i, v := range vals {
		s.Points = append(s.Points, Fig5Point{SYNRate: int64(10000 * i), HTTPPerSec: v})
	}
	return s
}

func TestCheckFig5(t *testing.T) {
	good := []Fig5Series{
		fig5Curve("4.4 BSD", 100, 40, 0),
		fig5Curve("SOFT-LRP", 98, 80, 52),
	}
	wantClean(t, CheckFig5(good))

	bad := []Fig5Series{fig5Curve("4.4 BSD", 100, 90, 80), good[1]}
	wantViolation(t, CheckFig5(bad), "bsd-collapse")

	bad = []Fig5Series{good[0], fig5Curve("SOFT-LRP", 98, 50, 20)}
	wantViolation(t, CheckFig5(bad), "soft-survives")
}

func goodAblations() []AblationRow {
	return []AblationRow{
		{Experiment: "corrupt-flood", Variant: "Early-Demux", Metric: "victim_cpu_share", Value: 0.11},
		{Experiment: "corrupt-flood", Variant: "SOFT-LRP", Metric: "victim_cpu_share", Value: 0.63},
		{Experiment: "idle-thread", Variant: "enabled", Metric: "recv_call_µs", Value: 56},
		{Experiment: "idle-thread", Variant: "disabled", Metric: "recv_call_µs", Value: 67},
		{Experiment: "early-discard", Variant: "bounded-channel", Metric: "probes_lost", Value: 0},
		{Experiment: "early-discard", Variant: "bounded-channel", Metric: "mbuf_highwater", Value: 71},
		{Experiment: "early-discard", Variant: "unbounded-channel", Metric: "probes_lost", Value: 400},
		{Experiment: "early-discard", Variant: "unbounded-channel", Metric: "mbuf_highwater", Value: 4096},
		{Experiment: "filter-demux", Variant: "hand-coded/1-sockets", Metric: "delivered_pps", Value: 8700},
		{Experiment: "filter-demux", Variant: "interpreted/1-sockets", Metric: "delivered_pps", Value: 9030},
		{Experiment: "filter-demux", Variant: "hand-coded/49-sockets", Metric: "delivered_pps", Value: 8700},
		{Experiment: "filter-demux", Variant: "interpreted/49-sockets", Metric: "delivered_pps", Value: 0},
	}
}

func TestCheckAblations(t *testing.T) {
	wantClean(t, CheckAblations(goodAblations()))

	bad := goodAblations()
	bad[2].Value = 70 // idle thread no longer helps
	wantViolation(t, CheckAblations(bad), "idle-shortens-recv")

	bad = goodAblations()
	bad[11].Value = 8000 // interpreted demux stopped collapsing
	wantViolation(t, CheckAblations(bad), "interpreted-collapses")

	wantViolation(t, CheckAblations(goodAblations()[:3]), "present")
}

func goodMedia() []MediaRow {
	return []MediaRow{
		{System: "4.4 BSD", BgRate: 0, MeanJitterUs: 0},
		{System: "4.4 BSD", BgRate: 6000, MeanJitterUs: 138, P99JitterUs: 481},
		{System: "NI-LRP", BgRate: 0, MeanJitterUs: 0},
		{System: "NI-LRP", BgRate: 6000, MeanJitterUs: 5, P99JitterUs: 8},
		{System: "SOFT-LRP", BgRate: 0, MeanJitterUs: 0},
		{System: "SOFT-LRP", BgRate: 6000, MeanJitterUs: 38, P99JitterUs: 126},
	}
}

func TestCheckMedia(t *testing.T) {
	wantClean(t, CheckMedia(goodMedia()))
	bad := goodMedia()
	bad[3].MeanJitterUs = 120 // NI-LRP jitters like BSD
	wantViolation(t, CheckMedia(bad), "bsd-jitters")
}

func TestCheckSuiteReportsMissing(t *testing.T) {
	s := NewSuite(1, true)
	s.Add(Experiment{Name: "table1", Table1: goodTable1()})
	vs := CheckSuite(s)
	missing := 0
	for _, v := range vs {
		if v.Check == "present" && strings.Contains(v.Detail, "missing from suite") {
			missing++
		}
	}
	if missing != len(SuiteExperiments)-1 {
		t.Fatalf("want %d missing-experiment violations, got %d: %v", len(SuiteExperiments)-1, missing, vs)
	}
}

func TestCheckSuiteCleanOnGoodData(t *testing.T) {
	s := NewSuite(1, true)
	s.Add(Experiment{Name: "table1", Table1: goodTable1()})
	s.Add(Experiment{Name: "fig3", Fig3: goodFig3()})
	s.Add(Experiment{Name: "mlfrr", MLFRR: []MLFRRRow{
		{System: "4.4 BSD", MLFRR: 7250, Peak: 8064},
		{System: "SOFT-LRP", MLFRR: 8250, Peak: 9072},
	}})
	s.Add(Experiment{Name: "fig4", Fig4: []Fig4Series{
		fig4Curve("4.4 BSD", 0, 350, 600, 1200),
		fig4Curve("NI-LRP", 0, 330, 340, 350),
		fig4Curve("SOFT-LRP", 0, 320, 400, 500),
	}})
	s.Add(Experiment{Name: "table2", Table2: goodTable2()})
	s.Add(Experiment{Name: "fig5", Fig5: []Fig5Series{
		fig5Curve("4.4 BSD", 100, 40, 0),
		fig5Curve("SOFT-LRP", 98, 80, 52),
	}})
	s.Add(Experiment{Name: "ablations", Ablations: goodAblations()})
	s.Add(Experiment{Name: "media", Media: goodMedia()})
	wantClean(t, CheckSuite(s))
}
