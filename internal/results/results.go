// Package results defines the typed result records the experiment
// drivers produce, a versioned JSON container for whole benchmark runs,
// and a shape-assertion library (checks.go) that encodes the paper's
// qualitative claims — who wins, where systems collapse, fairness
// bands — as machine-checkable predicates.
//
// The row types here are the single source of truth: internal/exp
// aliases them for live runs, and the same structs decode saved JSON,
// so a regression checker can treat a fresh sweep and an archived run
// identically.
package results

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is bumped whenever a row type or the Suite container
// changes incompatibly; Decode refuses files from other versions.
const SchemaVersion = 1

// Table1Row is one row of Table 1: "Throughput and Latency".
type Table1Row struct {
	System    string  `json:"system"`
	RTTMicros float64 `json:"rtt_us"`   // 1-byte UDP ping-pong round trip
	UDPMbps   float64 `json:"udp_mbps"` // sliding-window UDP throughput
	TCPMbps   float64 `json:"tcp_mbps"` // 24 MB transfer, 32 KB buffers
}

// Fig3Point is one point of Figure 3: "Throughput versus offered load".
type Fig3Point struct {
	Offered   int64   `json:"offered"`   // client transmission rate, pkts/s
	Delivered float64 `json:"delivered"` // rate consumed by the server process
}

// Fig3Series is one system's Figure 3 curve.
type Fig3Series struct {
	System string      `json:"system"`
	Points []Fig3Point `json:"points"`
}

// MLFRRRow reports one system's Maximum Loss-Free Receive Rate.
type MLFRRRow struct {
	System string  `json:"system"`
	MLFRR  int64   `json:"mlfrr"` // pkts/s
	Peak   float64 `json:"peak"`
}

// Fig4Point is one point of Figure 4: "Latency with concurrent load".
type Fig4Point struct {
	BgRate    int64   `json:"bg_rate"` // background blast rate, pkts/s
	RTTMicros float64 `json:"rtt_us"`  // ping-pong round-trip latency
	Lost      int     `json:"lost"`    // latency probes that went unanswered
}

// Fig4Series is one system's Figure 4 curve.
type Fig4Series struct {
	System string      `json:"system"`
	Points []Fig4Point `json:"points"`
}

// Table2Row is one cell-group of Table 2: "Synthetic RPC Server
// Workload".
type Table2Row struct {
	Workload      string  `json:"workload"` // Fast / Medium / Slow
	System        string  `json:"system"`
	WorkerElapsed float64 `json:"worker_elapsed_s"`
	ServerRPCRate float64 `json:"server_rpc_rate"`
	WorkerShare   float64 `json:"worker_share"` // worker CPU / elapsed, ideal 1/3
}

// Fig5Point is one point of Figure 5: "HTTP Server Throughput" under a
// SYN flood.
type Fig5Point struct {
	SYNRate    int64   `json:"syn_rate"`
	HTTPPerSec float64 `json:"http_per_sec"`
}

// Fig5Series is one system's Figure 5 curve.
type Fig5Series struct {
	System string      `json:"system"`
	Points []Fig5Point `json:"points"`
}

// AblationRow is one measurement of an ablation experiment.
type AblationRow struct {
	Experiment string  `json:"experiment"`
	Variant    string  `json:"variant"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
}

// MediaRow reports delivery jitter for the 30 fps media stream under
// background blast (the paper's §2.2 multimedia motivation).
type MediaRow struct {
	System       string  `json:"system"`
	BgRate       int64   `json:"bg_rate"`
	MeanJitterUs float64 `json:"mean_jitter_us"`
	P99JitterUs  int64   `json:"p99_jitter_us"`
	FramesLost   int64   `json:"frames_lost"`
}

// FaultPoint is one sweep point of a robustness curve: one impairment
// severity and how one system fared under it. The UDP metrics (goodput,
// p99, probes, victim share) are populated for the UDP robustness rig;
// TCPMbps is populated for the TCP transfer rig. Unused metrics are
// zero.
type FaultPoint struct {
	Severity    float64 `json:"severity"`     // impairment axis value; meaning given by FaultCurve.Axis
	GoodputPps  float64 `json:"goodput_pps"`  // blast packets consumed by the server process per second
	P99Us       int64   `json:"p99_us"`       // ping-pong p99 RTT in µs; -1 when every probe was lost
	ProbesLost  int     `json:"probes_lost"`  // latency probes that went unanswered
	VictimShare float64 `json:"victim_share"` // CPU share kept by a competing compute process
	TCPMbps     float64 `json:"tcp_mbps"`     // TCP transfer goodput (TCP rig only)
}

// FaultSeries is one system's robustness curve under one impairment.
type FaultSeries struct {
	System string       `json:"system"`
	Points []FaultPoint `json:"points"`
}

// FaultCurve is one impairment class's per-architecture sweep.
type FaultCurve struct {
	Impairment string        `json:"impairment"` // fault kind, e.g. "loss", "ge-loss", "ring-overrun"
	Axis       string        `json:"axis"`       // what Severity measures, e.g. "loss rate"
	Series     []FaultSeries `json:"series"`
}

// SMPPoint is one core-count cell of a multi-core scaling curve: the
// aggregate blast goodput a multi-CPU server consumes, the p99 latency
// of a probe running beside the blast, and the SMP-machinery counters
// (remote wakeups, IPIs taken, steals, idle halts) summed over CPUs.
type SMPPoint struct {
	Cores       int     `json:"cores"`
	OfferedPps  int64   `json:"offered_pps"`  // aggregate blast rate across all flows
	GoodputPps  float64 `json:"goodput_pps"`  // blast packets consumed by sink processes per second
	P99Us       int64   `json:"p99_us"`       // ping-pong p99 RTT in µs; -1 when every probe was lost
	RemoteWakes uint64  `json:"remote_wakes"` // cross-CPU wakeups during the measurement run
	IPIs        uint64  `json:"ipis"`         // inter-processor interrupts delivered
	Steals      uint64  `json:"steals"`       // processes migrated by work stealing
	Halts       uint64  `json:"halts"`        // idle-halt transitions
}

// SMPSeries is one (system, queue-mode) scaling curve: Queues is
// "single" (one rx ring, every network interrupt on CPU 0) or "multi"
// (one RSS-steered ring per core; NI-LRP routes channel interrupts to
// the owning process's CPU instead).
type SMPSeries struct {
	System string     `json:"system"`
	Queues string     `json:"queues"`
	Points []SMPPoint `json:"points"`
}

// WANPoint is one offered-load cell of an internet-scale sweep: the
// aggregate request rate offered by the modeled client population, the
// rate the server application consumed, and the drops at the server and
// summed over the topology's transit gateways.
type WANPoint struct {
	OfferedPps  int64   `json:"offered_pps"`  // population aggregate rate, pkts/s
	GoodputPps  float64 `json:"goodput_pps"`  // packets consumed by the server process per second
	ServerDrops uint64  `json:"server_drops"` // drops on the server host during measurement
	GwDrops     uint64  `json:"gw_drops"`     // drops summed over transit gateways
	Forwarded   uint64  `json:"forwarded"`    // packets forwarded by gateways during measurement
}

// WANSeries is one (topology, system) sweep of aggregated-population
// load: Clients is the modeled client count behind the topology's
// edges, Procs the stackless generator procs emitting it (the
// aggregation ratio the pop subsystem exists for), Impaired the named
// fault scenario applied per hop ("" for clean cells).
type WANSeries struct {
	Topology string     `json:"topology"` // "1hop", "chain3", "tree16", ...
	System   string     `json:"system"`
	Clients  int        `json:"clients"`
	Procs    int        `json:"procs"`
	Impaired string     `json:"impaired,omitempty"`
	Points   []WANPoint `json:"points"`
}

// Experiment is one named experiment's typed payload. Exactly one data
// field is populated, matching Name.
type Experiment struct {
	Name      string        `json:"name"`
	Table1    []Table1Row   `json:"table1,omitempty"`
	Fig3      []Fig3Series  `json:"fig3,omitempty"`
	MLFRR     []MLFRRRow    `json:"mlfrr,omitempty"`
	Fig4      []Fig4Series  `json:"fig4,omitempty"`
	Table2    []Table2Row   `json:"table2,omitempty"`
	Fig5      []Fig5Series  `json:"fig5,omitempty"`
	Ablations []AblationRow `json:"ablations,omitempty"`
	Media     []MediaRow    `json:"media,omitempty"`
	Faults    []FaultCurve  `json:"faults,omitempty"`
	SMP       []SMPSeries   `json:"smp,omitempty"`
	WAN       []WANSeries   `json:"wan,omitempty"`
}

// Suite is a whole lrpbench run: run parameters plus every experiment's
// rows, in canonical order. Suites contain no timestamps or host
// details, so two runs with the same seed and flags encode to identical
// bytes regardless of parallelism.
type Suite struct {
	Schema      int          `json:"schema"`
	Tool        string       `json:"tool"`
	Seed        uint64       `json:"seed"`
	Quick       bool         `json:"quick"`
	Experiments []Experiment `json:"experiments"`
}

// NewSuite returns an empty suite stamped with the current schema.
func NewSuite(seed uint64, quick bool) *Suite {
	return &Suite{Schema: SchemaVersion, Tool: "lrpbench", Seed: seed, Quick: quick}
}

// Add appends one experiment's payload.
func (s *Suite) Add(e Experiment) { s.Experiments = append(s.Experiments, e) }

// Find returns the named experiment's payload, or nil.
func (s *Suite) Find(name string) *Experiment {
	for i := range s.Experiments {
		if s.Experiments[i].Name == name {
			return &s.Experiments[i]
		}
	}
	return nil
}

// payload returns whether e carries any rows under its declared name.
func (e *Experiment) payload() bool {
	switch e.Name {
	case "table1":
		return len(e.Table1) > 0
	case "fig3":
		return len(e.Fig3) > 0
	case "mlfrr":
		return len(e.MLFRR) > 0
	case "fig4":
		return len(e.Fig4) > 0
	case "table2":
		return len(e.Table2) > 0
	case "fig5":
		return len(e.Fig5) > 0
	case "ablations":
		return len(e.Ablations) > 0
	case "media":
		return len(e.Media) > 0
	case "faults":
		return len(e.Faults) > 0
	case "smp":
		return len(e.SMP) > 0
	case "wan":
		return len(e.WAN) > 0
	}
	return false
}

// Validate checks structural integrity: schema version, tool tag, and
// that every experiment entry is a known name carrying rows under that
// name.
func (s *Suite) Validate() error {
	if s.Schema != SchemaVersion {
		return fmt.Errorf("results: schema %d, this tool reads %d", s.Schema, SchemaVersion)
	}
	if s.Tool != "lrpbench" {
		return fmt.Errorf("results: unknown tool %q", s.Tool)
	}
	for i := range s.Experiments {
		e := &s.Experiments[i]
		if !e.payload() {
			return fmt.Errorf("results: experiment %d (%q) carries no rows under its name", i, e.Name)
		}
	}
	return nil
}

// Encode writes the suite as indented JSON with a trailing newline.
// The encoding is deterministic: struct-field order, no timestamps.
func (s *Suite) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode reads and validates a suite produced by Encode.
func Decode(r io.Reader) (*Suite, error) {
	var s Suite
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("results: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
