package exp

// Per-event cost of the SMP layer at M = 1, 2, 4 CPUs: one RSS-steered
// 6,000 pkts/s flow per core into a per-core sink on a multi-queue
// SOFT-LRP host, the smp experiment's cell minus the probe. The
// ns/event metric divides wall time by sim.Engine.Processed(), so it
// tracks what the cluster layer adds per simulated event (IPI events,
// steal checks, per-queue interrupts) rather than how many events a
// bigger machine generates. BENCH_smp.json records the numbers beside
// the sweep's wall clock.

import (
	"runtime"
	"testing"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/sim"
)

func benchmarkSMPCell(b *testing.B, cores int) {
	var events, mallocs uint64
	var ms runtime.MemStats
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		nw := netsim.New(eng)
		server := core.NewHost(eng, nw, core.Config{
			Name: "B", Addr: AddrB, Arch: core.ArchSoftLRP, Costs: smpCosts(),
			CPUs: cores, RxQueues: cores,
		})
		for q := 0; q < cores; q++ {
			dport := uint16(100 + q)
			sink := &app.BlastSink{Host: server, Port: dport, CPU: q, PerPktCompute: 10}
			sink.Start()
			src := &app.BlastSource{
				Net: nw, Src: AddrC, Dst: AddrB,
				SPort: steerPort(cores, q, dport), DPort: dport,
				Size: 14, Rate: smpPerCoreRate, Poisson: true,
				Rng: sim.NewRand(uint64(1 + q)),
			}
			src.Start()
		}
		// Steady-state allocation metric: count mallocs across the run
		// phase only, so world construction (fresh engine, host, apps every
		// iteration) does not drown it. Warm-up growth (event free list,
		// mbuf pools, lane hot array) leaves a small constant per run;
		// anything per-event shows up as allocs/event near or above 1.
		runtime.ReadMemStats(&ms)
		pre := ms.Mallocs
		eng.RunFor(300 * sim.Millisecond)
		runtime.ReadMemStats(&ms)
		mallocs += ms.Mallocs - pre
		events += eng.Processed()
		server.Shutdown()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	b.ReportMetric(float64(mallocs)/float64(events), "allocs/event")
}

func BenchmarkSMPCell1CPU(b *testing.B) { benchmarkSMPCell(b, 1) }
func BenchmarkSMPCell2CPU(b *testing.B) { benchmarkSMPCell(b, 2) }
func BenchmarkSMPCell4CPU(b *testing.B) { benchmarkSMPCell(b, 4) }
