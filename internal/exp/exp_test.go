package exp

// Shape regression tests: each experiment must keep reproducing the
// paper's qualitative results (who wins, where systems collapse) in quick
// mode. Absolute numbers live in EXPERIMENTS.md and the full runs.

import "testing"

func findSeries3(t *testing.T, ss []Fig3Series, name string) Fig3Series {
	t.Helper()
	for _, s := range ss {
		if s.System == name {
			return s
		}
	}
	t.Fatalf("series %q missing", name)
	return Fig3Series{}
}

func peakAndLast3(s Fig3Series) (peak, last float64) {
	for _, p := range s.Points {
		if p.Delivered > peak {
			peak = p.Delivered
		}
	}
	return peak, s.Points[len(s.Points)-1].Delivered
}

func TestFig3Shape(t *testing.T) {
	series := Fig3(Options{Quick: true})
	bsd := findSeries3(t, series, "4.4 BSD")
	ni := findSeries3(t, series, "NI-LRP")
	soft := findSeries3(t, series, "SOFT-LRP")
	ed := findSeries3(t, series, "Early-Demux")

	bsdPeak, bsdLast := peakAndLast3(bsd)
	niPeak, niLast := peakAndLast3(ni)
	softPeak, softLast := peakAndLast3(soft)
	_, edLast := peakAndLast3(ed)

	// BSD collapses toward livelock at 20k offered.
	if bsdLast > 0.25*bsdPeak {
		t.Errorf("BSD did not collapse: peak %.0f, at 20k %.0f", bsdPeak, bsdLast)
	}
	// NI-LRP is flat at its maximum: load shedding on the NIC.
	if niLast < 0.95*niPeak {
		t.Errorf("NI-LRP not flat under overload: peak %.0f, at 20k %.0f", niPeak, niLast)
	}
	// SOFT-LRP declines only slowly (demux overhead), staying well above
	// half its peak.
	if softLast < 0.55*softPeak {
		t.Errorf("SOFT-LRP declined too fast: peak %.0f, at 20k %.0f", softPeak, softLast)
	}
	// Peak ordering: NI-LRP > SOFT-LRP > BSD.
	if !(niPeak > softPeak && softPeak > bsdPeak*0.99) {
		t.Errorf("peak ordering violated: NI %.0f, SOFT %.0f, BSD %.0f", niPeak, softPeak, bsdPeak)
	}
	// Early-Demux stays stable but clearly below SOFT-LRP in overload.
	if edLast < 0.25*softLast || edLast > 0.85*softLast {
		t.Errorf("Early-Demux at 20k = %.0f, want 25-85%% of SOFT-LRP's %.0f", edLast, softLast)
	}
}

func TestMLFRRRelation(t *testing.T) {
	rows := MLFRR(Options{Quick: true})
	var bsd, soft MLFRRRow
	for _, r := range rows {
		switch r.System {
		case "4.4 BSD":
			bsd = r
		case "SOFT-LRP":
			soft = r
		}
	}
	if bsd.MLFRR == 0 || soft.MLFRR == 0 {
		t.Fatalf("MLFRR scan incomplete: %+v", rows)
	}
	// "the MLFRR of SOFT-LRP exceeded that of 4.4BSD by 44%".
	if soft.MLFRR <= bsd.MLFRR {
		t.Errorf("SOFT-LRP MLFRR %d should exceed BSD's %d", soft.MLFRR, bsd.MLFRR)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(Options{Quick: true})
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.System] = r
		if r.RTTMicros <= 0 || r.UDPMbps <= 0 || r.TCPMbps <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	fore := byName["SunOS, Fore driver"]
	bsd := byName["4.4 BSD"]
	ni := byName["LRP (NI Demux)"]
	soft := byName["LRP (Soft Demux)"]

	// The vendor driver is clearly worse on all three metrics.
	if fore.RTTMicros < bsd.RTTMicros || fore.UDPMbps > bsd.UDPMbps || fore.TCPMbps > bsd.TCPMbps {
		t.Errorf("Fore driver should be worst: %+v vs %+v", fore, bsd)
	}
	// LRP's basic performance is comparable to BSD (within 10%): "LRP's
	// improved overload behavior does not come at the cost of low-load
	// performance."
	for _, lrp := range []Table1Row{ni, soft} {
		if lrp.RTTMicros > bsd.RTTMicros*1.1 {
			t.Errorf("%s RTT %.0f not comparable to BSD %.0f", lrp.System, lrp.RTTMicros, bsd.RTTMicros)
		}
		if lrp.UDPMbps < bsd.UDPMbps*0.9 || lrp.TCPMbps < bsd.TCPMbps*0.9 {
			t.Errorf("%s throughput not comparable to BSD: %+v vs %+v", lrp.System, lrp, bsd)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	series := Fig4(Options{Quick: true})
	rtts := map[string][]Fig4Point{}
	for _, s := range series {
		rtts[s.System] = s.Points
	}
	bsd, ni, soft := rtts["4.4 BSD"], rtts["NI-LRP"], rtts["SOFT-LRP"]
	if len(bsd) == 0 || len(ni) == 0 || len(soft) == 0 {
		t.Fatal("missing series")
	}
	bsdGrowth := bsd[len(bsd)-1].RTTMicros / bsd[0].RTTMicros
	niGrowth := ni[len(ni)-1].RTTMicros / ni[0].RTTMicros
	softGrowth := soft[len(soft)-1].RTTMicros / soft[0].RTTMicros
	// BSD latency explodes with background load; NI-LRP is barely
	// affected; SOFT-LRP rises only gradually.
	if bsdGrowth < 2 {
		t.Errorf("BSD latency should grow strongly under load: x%.2f", bsdGrowth)
	}
	if niGrowth > 1.5 {
		t.Errorf("NI-LRP latency should be barely affected: x%.2f", niGrowth)
	}
	if softGrowth > bsdGrowth/1.5 {
		t.Errorf("SOFT-LRP (x%.2f) should grow much less than BSD (x%.2f)", softGrowth, bsdGrowth)
	}
	// Traffic separation: LRP never loses a latency probe, at any rate.
	for _, s := range series {
		if s.System == "4.4 BSD" {
			continue
		}
		for _, p := range s.Points {
			if p.Lost != 0 {
				t.Errorf("%s lost %d probes at bg=%d; separation broken", s.System, p.Lost, p.BgRate)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(Options{Quick: true})
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.System] = r
		if r.WorkerElapsed <= 0 {
			t.Fatalf("worker did not finish: %+v", r)
		}
	}
	for _, wl := range []string{"Fast", "Medium", "Slow"} {
		bsd := byKey[wl+"/4.4 BSD"]
		ni := byKey[wl+"/NI-LRP"]
		soft := byKey[wl+"/SOFT-LRP"]
		// Worker completes fastest under NI-LRP, slowest under BSD.
		if !(bsd.WorkerElapsed > ni.WorkerElapsed) {
			t.Errorf("%s: BSD worker elapsed %.2f should exceed NI-LRP %.2f", wl, bsd.WorkerElapsed, ni.WorkerElapsed)
		}
		if soft.WorkerElapsed > bsd.WorkerElapsed {
			t.Errorf("%s: SOFT-LRP elapsed %.2f should not exceed BSD %.2f", wl, soft.WorkerElapsed, bsd.WorkerElapsed)
		}
		// Fair share: LRP keeps the worker closer to the ideal 1/3.
		if bsd.WorkerShare >= ni.WorkerShare {
			t.Errorf("%s: BSD share %.3f should be below NI-LRP %.3f", wl, bsd.WorkerShare, ni.WorkerShare)
		}
		// RPC rates comparable (LRP equal or slightly higher).
		if ni.ServerRPCRate < bsd.ServerRPCRate*0.97 {
			t.Errorf("%s: NI-LRP rate %.0f fell below BSD %.0f", wl, ni.ServerRPCRate, bsd.ServerRPCRate)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	series := Fig5(Options{Quick: true})
	pts := map[string][]Fig5Point{}
	for _, s := range series {
		pts[s.System] = s.Points
	}
	bsd, soft := pts["4.4 BSD"], pts["SOFT-LRP"]
	if len(bsd) == 0 || len(soft) == 0 {
		t.Fatal("missing series")
	}
	// Unloaded throughput is comparable.
	if soft[0].HTTPPerSec < bsd[0].HTTPPerSec*0.9 {
		t.Errorf("unloaded: SOFT-LRP %.0f vs BSD %.0f", soft[0].HTTPPerSec, bsd[0].HTTPPerSec)
	}
	// BSD collapses under the flood; LRP keeps ~half its throughput at 20k.
	bsdLast := bsd[len(bsd)-1].HTTPPerSec
	softLast := soft[len(soft)-1].HTTPPerSec
	if bsdLast > 0.2*bsd[0].HTTPPerSec {
		t.Errorf("BSD did not collapse under SYN flood: %.0f of %.0f", bsdLast, bsd[0].HTTPPerSec)
	}
	if softLast < 0.35*soft[0].HTTPPerSec {
		t.Errorf("SOFT-LRP fell below ~half throughput: %.0f of %.0f", softLast, soft[0].HTTPPerSec)
	}
}

func ablationValue(t *testing.T, rows []AblationRow, exp, variant, metric string) float64 {
	t.Helper()
	for _, r := range rows {
		if r.Experiment == exp && r.Variant == variant && r.Metric == metric {
			return r.Value
		}
	}
	t.Fatalf("missing ablation row %s/%s/%s", exp, variant, metric)
	return 0
}

func TestCorruptFloodAblation(t *testing.T) {
	rows := CorruptFlood(Options{Quick: true})
	ed := ablationValue(t, rows, "corrupt-flood", "Early-Demux", "victim_cpu_share")
	lrp := ablationValue(t, rows, "corrupt-flood", "SOFT-LRP", "victim_cpu_share")
	// Early demultiplexing alone is "defenseless against ... corrupted
	// data packets": the victim starves. LRP charges the garbage to its
	// receiver and the victim keeps a healthy share.
	if ed > 0.3 {
		t.Errorf("Early-Demux victim kept %.2f CPU; corrupt flood should starve it", ed)
	}
	if lrp < 2*ed {
		t.Errorf("SOFT-LRP victim share %.2f not clearly above Early-Demux %.2f", lrp, ed)
	}
}

func TestIdleThreadAblation(t *testing.T) {
	rows := IdleThreadLatency(Options{Quick: true})
	with := ablationValue(t, rows, "idle-thread", "enabled", "recv_call_µs")
	without := ablationValue(t, rows, "idle-thread", "disabled", "recv_call_µs")
	if with >= without {
		t.Errorf("idle-time processing should shorten the recv call: %.0f vs %.0f µs", with, without)
	}
}

func TestEarlyDiscardAblation(t *testing.T) {
	rows := EarlyDiscardContribution(Options{Quick: true})
	lostB := ablationValue(t, rows, "early-discard", "bounded-channel", "probes_lost")
	lostU := ablationValue(t, rows, "early-discard", "unbounded-channel", "probes_lost")
	hwB := ablationValue(t, rows, "early-discard", "bounded-channel", "mbuf_highwater")
	hwU := ablationValue(t, rows, "early-discard", "unbounded-channel", "mbuf_highwater")
	// Bounded channels keep the overloaded socket from pinning the mbuf
	// pool; without the bound, unrelated traffic starts losing packets.
	if lostB > lostU/10+1 {
		t.Errorf("bounded channel lost %.0f probes vs unbounded %.0f", lostB, lostU)
	}
	if lostU < 10 {
		t.Errorf("unbounded channel should lose many probes to pool exhaustion: %.0f", lostU)
	}
	if hwU < 10*hwB {
		t.Errorf("unbounded channel should pin far more mbufs: %.0f vs %.0f", hwU, hwB)
	}
}

func TestMediaJitterShape(t *testing.T) {
	rows := MediaJitter(Options{Quick: true})
	get := func(system string, bg int64) MediaRow {
		for _, r := range rows {
			if r.System == system && r.BgRate == bg {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", system, bg)
		return MediaRow{}
	}
	bsd := get("4.4 BSD", 6000)
	ni := get("NI-LRP", 6000)
	soft := get("SOFT-LRP", 6000)
	// Unloaded, everyone delivers with negligible jitter.
	for _, sys := range []string{"4.4 BSD", "NI-LRP", "SOFT-LRP"} {
		if r := get(sys, 0); r.MeanJitterUs > 20 {
			t.Errorf("%s unloaded jitter %.0fµs", sys, r.MeanJitterUs)
		}
	}
	// Under background blast, BSD's bursts delay the stream; LRP's traffic
	// separation keeps jitter far lower (NI-LRP near zero).
	if bsd.MeanJitterUs < 3*ni.MeanJitterUs {
		t.Errorf("BSD jitter %.0fµs not clearly above NI-LRP %.0fµs", bsd.MeanJitterUs, ni.MeanJitterUs)
	}
	if soft.MeanJitterUs > bsd.MeanJitterUs {
		t.Errorf("SOFT-LRP jitter %.0fµs above BSD %.0fµs", soft.MeanJitterUs, bsd.MeanJitterUs)
	}
}

func TestFilterDemuxAblation(t *testing.T) {
	rows := FilterDemuxAblation(Options{Quick: true})
	get := func(variant string) float64 {
		return ablationValue(t, rows, "filter-demux", variant, "delivered_pps")
	}
	// Hand-coded demux is insensitive to the number of bound endpoints.
	h1, h49 := get("hand-coded/1-sockets"), get("hand-coded/49-sockets")
	if h49 < h1*0.9 {
		t.Errorf("hand-coded demux degraded with endpoints: %.0f -> %.0f", h1, h49)
	}
	// Interpreted filters lose livelock protection as endpoints grow.
	i1, i49 := get("interpreted/1-sockets"), get("interpreted/49-sockets")
	if i49 > i1/4 {
		t.Errorf("interpreted demux should collapse with 49 endpoints: %.0f -> %.0f", i1, i49)
	}
}

func TestFig3PollingShape(t *testing.T) {
	series := Fig3(Options{Quick: true})
	poll := findSeries3(t, series, "Polling (M&R)")
	ni := findSeries3(t, series, "NI-LRP")
	pollPeak, pollLast := peakAndLast3(poll)
	_, niLast := peakAndLast3(ni)
	// "The overload stability of their system appears to be comparable to
	// that of NI-LRP": flat under overload...
	if pollLast < 0.9*pollPeak {
		t.Errorf("polling not stable: peak %.0f, at 20k %.0f", pollPeak, pollLast)
	}
	// ...but without lazy processing its ceiling sits below NI-LRP's.
	if pollLast >= niLast {
		t.Errorf("polling (%.0f) should deliver less than NI-LRP (%.0f)", pollLast, niLast)
	}
}

func TestExperimentDeterminism(t *testing.T) {
	// Identical seeds must reproduce identical results: the entire
	// simulation is deterministic by construction.
	sys := OverloadSystems()[2] // SOFT-LRP
	a, dropsA := fig3Run(sys, 12000, Options{Quick: true, Seed: 9})
	b, dropsB := fig3Run(sys, 12000, Options{Quick: true, Seed: 9})
	if a != b || dropsA != dropsB {
		t.Fatalf("same seed diverged: %.2f/%d vs %.2f/%d", a, dropsA, b, dropsB)
	}
	c, _ := fig3Run(sys, 12000, Options{Quick: true, Seed: 10})
	if c == a {
		t.Logf("different seeds produced identical delivery (%v); suspicious but possible", c)
	}
}
