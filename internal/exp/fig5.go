package exp

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
)

// Fig5Point is one point of Figure 5: "HTTP Server Throughput" under a
// SYN flood (completed HTTP transfers/s vs background SYN rate).
type Fig5Point = results.Fig5Point

// Fig5Series is one system's curve.
type Fig5Series = results.Fig5Series

func fig5Rates(quick bool) []int64 {
	if quick {
		return []int64{0, 6000, 14000, 20000}
	}
	return []int64{0, 2000, 4000, 6000, 8000, 10000, 12000, 14000, 16000, 18000, 20000}
}

// fig5Systems: the paper compares 4.4 BSD against SOFT-LRP.
func fig5Systems() []System {
	return []System{
		{Name: "4.4 BSD", Arch: core.ArchBSD, Costs: core.DefaultCosts},
		{Name: "SOFT-LRP", Arch: core.ArchSoftLRP, Costs: core.DefaultCosts},
	}
}

// Fig5 reproduces the WWW server experiment: "eight HTTP clients on a
// single machine continually request HTTP transfers from the server. The
// requested document is approximately 1300 bytes long... A second client
// machine sends fake TCP connection establishment requests (SYN packets)
// to a dummy server running on the server machine."
func Fig5(opt Options) []Fig5Series {
	spec := runner.Spec[System, int64, Fig5Point]{
		Name:    "fig5",
		Systems: fig5Systems(),
		Axis:    fig5Rates(opt.Quick),
		Run: func(sys System, rate int64) Fig5Point {
			var tput float64
			labeled(sys.Name, func() { tput = fig5Run(sys, rate, opt) })
			opt.progress(fmt.Sprintf("fig5: %s syn=%d http/s=%.1f", sys.Name, rate, tput))
			return Fig5Point{SYNRate: rate, HTTPPerSec: tput}
		},
	}
	grid := runner.Sweep(opt.pool(), spec)
	out := make([]Fig5Series, len(grid))
	for i, pts := range grid {
		out[i] = Fig5Series{System: spec.Systems[i].Name, Points: pts}
	}
	return out
}

func fig5Run(sys System, synRate int64, opt Options) float64 {
	r := newRig3TimeWait(sys, opt)
	defer r.shutdown()
	server, clientA, clientC := r.hosts[1], r.hosts[0], r.hosts[2]
	_ = clientC

	// The HTTP server with per-connection handler processes.
	httpd := &app.HTTPServer{
		Host:    server,
		Port:    80,
		Backlog: 32,
		DocSize: 1300,
	}
	httpd.Start()

	// The dummy server: listens on another port, never accepts.
	app.StartDummyServer(server, 99, 5)

	// Eight HTTP clients saturate the server.
	clients := make([]*app.HTTPClient, 8)
	for i := range clients {
		clients[i] = &app.HTTPClient{
			Host:       clientA,
			ServerAddr: AddrB,
			ServerPort: 80,
			Name:       fmt.Sprintf("http-cli-%d", i),
		}
		clients[i].Start()
	}

	// SYN flood from the second client machine.
	if synRate > 0 {
		flood := &app.SYNFlood{
			Net:   r.nw,
			Src:   AddrC,
			Dst:   AddrB,
			DPort: 99,
			Rate:  synRate,
			Rng:   sim.NewRand(opt.Seed + uint64(synRate) + 5),
		}
		flood.Start()
	}

	warm, measure := 3*sim.Second, 6*sim.Second
	if opt.Quick {
		warm, measure = sim.Second, 2*sim.Second
	}
	r.eng.RunFor(warm)
	var base uint64
	for _, c := range clients {
		base += c.Completed.Total()
	}
	r.eng.RunFor(measure)
	var total uint64
	for _, c := range clients {
		total += c.Completed.Total()
	}
	return float64(total-base) / (float64(measure) / 1e6)
}

// newRig3TimeWait builds the Fig. 5 network: three hosts with the paper's
// methodology switches — TIME_WAIT shortened to 500 ms, and the redundant
// PCB lookup enabled so LRP gains no advantage from its cheaper demux
// ("the LRP system performed a redundant PCB lookup to eliminate any bias
// due to the greater efficiency of the early demultiplexing in LRP").
func newRig3TimeWait(sys System, opt Options) *rig {
	costs := func() *core.CostModel {
		cm := sys.Costs()
		cm.TimeWaitDur = 500 * sim.Millisecond
		cm.RedundantPCBLookup = true
		return cm
	}
	return newRig(System{Name: sys.Name, Arch: sys.Arch, Costs: costs}, 3, opt)
}
