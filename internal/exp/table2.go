package exp

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
)

// Table2Row reproduces one cell-group of Table 2: "Synthetic RPC Server
// Workload" (worker completion time, combined RPC rate of the two RPC
// servers, and the worker's CPU share — ideal 1/3).
type Table2Row = results.Table2Row

// table2Workloads maps the paper's Fast/Medium/Slow to per-request compute
// (µs) and per-client request spacing, calibrated so the combined RPC rate
// lands in the paper's ~2000-3400/s range while the servers stay just
// below saturation ("the clients generate requests at the maximal
// throughput rate of the server... the server is not operating under
// conditions of overload").
type table2Workload struct {
	Name     string
	PerCall  int64
	Interval int64 // per-client send spacing, µs
}

var table2Workloads = []table2Workload{
	{"Fast", 120, 950},
	{"Medium", 220, 1300},
	{"Slow", 420, 1950},
}

// Table2 runs the synthetic RPC server workload: a memory-bound worker RPC
// plus two RPC servers kept saturated by a client, measuring worker
// completion time, aggregate RPC rate, and the worker's CPU share.
func Table2(opt Options) []Table2Row {
	// BSD, NI-LRP, SOFT-LRP per workload; workload-major row order.
	cells := runner.Cross(table2Workloads, LatencySystems())
	return runner.Map(opt.pool(), cells, func(_ int, c runner.Pair[table2Workload, System]) Table2Row {
		var row Table2Row
		labeled(c.B.Name, func() { row = table2Run(c.B, c.A.Name, c.A.PerCall, c.A.Interval, opt) })
		opt.progress(fmt.Sprintf("table2: %s/%s elapsed=%.1fs rate=%.0f share=%.2f",
			c.A.Name, c.B.Name, row.WorkerElapsed, row.ServerRPCRate, row.WorkerShare))
		return row
	})
}

func table2Run(sys System, workload string, perCall, interval int64, opt Options) Table2Row {
	r := newRig(sys, 2, opt)
	defer r.shutdown()
	server, client := r.hosts[1], r.hosts[0]

	workCPU := int64(11_500) * sim.Millisecond // "approximately 11.5 seconds of CPU time"
	if opt.Quick {
		workCPU = 1500 * sim.Millisecond
	}

	// The worker: one long memory-bound RPC. Its working set covers 35% of
	// the L2 cache, so losing the CPU costs a refill, and even interrupt
	// handling disturbs it.
	worker := &app.WorkerServer{
		Host:         server,
		Port:         1000,
		ComputeTime:  workCPU,
		CachePenalty: 40,
	}
	worker.Start()
	worker.Proc.IntrPenalty = server.CM.RxDisturbPenalty

	// Two RPC servers with the per-request computation under test.
	pen := server.CM.RxDisturbPenalty
	srv1 := &app.RPCServer{Host: server, Port: 1001, PerCallCompute: perCall, CachePenalty: 30, DisturbPenalty: pen}
	srv2 := &app.RPCServer{Host: server, Port: 1002, PerCallCompute: perCall, CachePenalty: 30, DisturbPenalty: pen}
	srv1.Start()
	srv2.Start()

	// Clients: keep requests outstanding at both servers at all times,
	// spaced near-uniformly in time (paced open loop with an in-flight
	// cap), and fire the single worker request.
	cli1 := &app.RPCClient{Host: client, ServerAddr: AddrB, ServerPort: 1001, Outstanding: 8, Interval: interval, Rng: sim.NewRand(opt.Seed + 11)}
	cli2 := &app.RPCClient{Host: client, ServerAddr: AddrB, ServerPort: 1002, Outstanding: 8, Interval: interval, Rng: sim.NewRand(opt.Seed + 22)}
	cli1.Start()
	cli2.Start()
	wcli := &app.RPCClient{Host: client, ServerAddr: AddrB, ServerPort: 1000, Outstanding: 1, Rng: sim.NewRand(opt.Seed + 33)}
	wcli.Start()

	// Run until the worker completes (bounded).
	limitFactor := int64(8)
	deadline := r.eng.Now() + workCPU*limitFactor
	for !worker.Done && r.eng.Now() < deadline {
		r.eng.RunFor(100 * sim.Millisecond)
	}
	elapsed := worker.Elapsed()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(srv1.Served.Total()+srv2.Served.Total()) / (float64(elapsed) / 1e6)
	}
	return Table2Row{
		Workload:      workload,
		System:        sys.Name,
		WorkerElapsed: float64(elapsed) / 1e6,
		ServerRPCRate: rate,
		WorkerShare:   worker.CPUShare(),
	}
}
