package exp

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/sim"
)

// Table2Row reproduces one cell-group of Table 2: "Synthetic RPC Server
// Workload".
type Table2Row struct {
	Workload      string // Fast / Medium / Slow
	System        string
	WorkerElapsed float64 // seconds to complete the worker RPC
	ServerRPCRate float64 // combined RPCs/s of the two RPC servers
	WorkerShare   float64 // worker CPU time / elapsed (ideal 1/3)
}

// table2Workloads maps the paper's Fast/Medium/Slow to per-request compute
// (µs) and per-client request spacing, calibrated so the combined RPC rate
// lands in the paper's ~2000-3400/s range while the servers stay just
// below saturation ("the clients generate requests at the maximal
// throughput rate of the server... the server is not operating under
// conditions of overload").
var table2Workloads = []struct {
	Name     string
	PerCall  int64
	Interval int64 // per-client send spacing, µs
}{
	{"Fast", 120, 950},
	{"Medium", 220, 1300},
	{"Slow", 420, 1950},
}

// Table2 runs the synthetic RPC server workload: a memory-bound worker RPC
// plus two RPC servers kept saturated by a client, measuring worker
// completion time, aggregate RPC rate, and the worker's CPU share.
func Table2(opt Options) []Table2Row {
	var rows []Table2Row
	for _, wl := range table2Workloads {
		for _, sys := range LatencySystems() { // BSD, NI-LRP, SOFT-LRP
			row := table2Run(sys, wl.Name, wl.PerCall, wl.Interval, opt)
			rows = append(rows, row)
			opt.progress(fmt.Sprintf("table2: %s/%s elapsed=%.1fs rate=%.0f share=%.2f",
				wl.Name, sys.Name, row.WorkerElapsed, row.ServerRPCRate, row.WorkerShare))
		}
	}
	return rows
}

func table2Run(sys System, workload string, perCall, interval int64, opt Options) Table2Row {
	r := newRig(sys, 2)
	defer r.shutdown()
	server, client := r.hosts[1], r.hosts[0]

	workCPU := int64(11_500) * sim.Millisecond // "approximately 11.5 seconds of CPU time"
	if opt.Quick {
		workCPU = 1500 * sim.Millisecond
	}

	// The worker: one long memory-bound RPC. Its working set covers 35% of
	// the L2 cache, so losing the CPU costs a refill, and even interrupt
	// handling disturbs it.
	worker := &app.WorkerServer{
		Host:         server,
		Port:         1000,
		ComputeTime:  workCPU,
		CachePenalty: 40,
	}
	worker.Start()
	worker.Proc.IntrPenalty = server.CM.RxDisturbPenalty

	// Two RPC servers with the per-request computation under test.
	pen := server.CM.RxDisturbPenalty
	srv1 := &app.RPCServer{Host: server, Port: 1001, PerCallCompute: perCall, CachePenalty: 30, DisturbPenalty: pen}
	srv2 := &app.RPCServer{Host: server, Port: 1002, PerCallCompute: perCall, CachePenalty: 30, DisturbPenalty: pen}
	srv1.Start()
	srv2.Start()

	// Clients: keep requests outstanding at both servers at all times,
	// spaced near-uniformly in time (paced open loop with an in-flight
	// cap), and fire the single worker request.
	cli1 := &app.RPCClient{Host: client, ServerAddr: AddrB, ServerPort: 1001, Outstanding: 8, Interval: interval, Rng: sim.NewRand(opt.Seed + 11)}
	cli2 := &app.RPCClient{Host: client, ServerAddr: AddrB, ServerPort: 1002, Outstanding: 8, Interval: interval, Rng: sim.NewRand(opt.Seed + 22)}
	cli1.Start()
	cli2.Start()
	wcli := &app.RPCClient{Host: client, ServerAddr: AddrB, ServerPort: 1000, Outstanding: 1, Rng: sim.NewRand(opt.Seed + 33)}
	wcli.Start()

	// Run until the worker completes (bounded).
	limitFactor := int64(8)
	deadline := r.eng.Now() + workCPU*limitFactor
	for !worker.Done && r.eng.Now() < deadline {
		r.eng.RunFor(100 * sim.Millisecond)
	}
	elapsed := worker.Elapsed()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(srv1.Served.Total()+srv2.Served.Total()) / (float64(elapsed) / 1e6)
	}
	return Table2Row{
		Workload:      workload,
		System:        sys.Name,
		WorkerElapsed: float64(elapsed) / 1e6,
		ServerRPCRate: rate,
		WorkerShare:   worker.CPUShare(),
	}
}
