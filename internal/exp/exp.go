// Package exp contains one driver per table/figure of the paper's
// evaluation (Section 4). Each driver builds a fresh simulated network,
// runs the paper's workload, and returns the same rows or series the
// paper reports. Absolute numbers depend on the calibrated cost model
// (see internal/core and EXPERIMENTS.md); the drivers exist to reproduce
// the paper's shapes: who wins, by what factor, and where systems
// collapse.
package exp

import (
	"context"
	"runtime/pprof"

	"lrp/internal/core"
	"lrp/internal/fault"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/runner"
	"lrp/internal/sim"
)

// Standard experiment addresses: machine A (client), B (server), C
// (background traffic source), as in the paper's three-machine setups.
var (
	AddrA = pkt.IP(10, 0, 0, 1)
	AddrB = pkt.IP(10, 0, 0, 2)
	AddrC = pkt.IP(10, 0, 0, 3)
)

// Options tunes experiment durations and execution.
type Options struct {
	// Quick shrinks durations/iterations for tests and smoke benchmarks.
	Quick bool
	// Seed perturbs traffic generators.
	Seed uint64
	// Verbose callbacks (optional): called with progress lines. When
	// Parallel > 1 the callback may be invoked from multiple goroutines
	// concurrently and must be safe for that.
	Progress func(string)
	// Parallel caps how many simulation worlds a driver runs at once;
	// 0 and 1 both mean serial. Every sweep point builds a private
	// engine and results are assembled in declaration order, so the
	// value changes wall-clock time only — never any result.
	Parallel int
	// Pool, when non-nil, is a shared worker pool that the driver's
	// sweeps draw from instead of a private Parallel-worker pool.
	// RunSuite sets it so one bound governs every simulation world
	// across all concurrently-running experiments.
	Pool *runner.Pool
	// ExpStart and ExpDone, when set, are invoked by RunSuite as each
	// experiment driver starts and finishes. With Parallel > 1 drivers
	// run concurrently, so the callbacks must be safe to call from
	// multiple goroutines.
	ExpStart func(name string)
	ExpDone  func(name string)
	// FaultPlan, when non-nil, is applied network-wide to every
	// simulation world an experiment builds (the CLI's -faultplan flag:
	// any experiment under any named impairment scenario). Each world
	// compiles the plan into its own pipeline — pipelines carry per-run
	// RNG state and must never be shared across concurrent worlds.
	FaultPlan *fault.Plan
}

// applyFaults attaches the option-level fault plan to one world's
// network; a no-op without a plan, so archived clean runs are untouched.
func (o Options) applyFaults(nw *netsim.Network) {
	if o.FaultPlan != nil {
		nw.SetFaults(fault.MustNew(*o.FaultPlan))
	}
}

func (o Options) progress(s string) {
	if o.Progress != nil {
		o.Progress(s)
	}
}

// pool returns the worker pool the drivers sweep over: the suite-shared
// pool when one is set, else a private pool of Parallel workers.
func (o Options) pool() *runner.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return runner.NewPool(o.Parallel)
}

// labeled runs fn under a pprof "arch" label, so a -cpuprofile of a run
// attributes samples to the architecture being simulated. Combined with
// the per-experiment label applied by RunExperiment, profile samples
// split by (experiment, arch); see EXPERIMENTS.md for the workflow.
func labeled(arch string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("arch", arch), func(context.Context) { fn() })
}

// System identifies a benchmarked kernel configuration: an architecture
// plus a cost model (Table 1 additionally measures the vendor SunOS/Fore
// baseline, which is the BSD architecture with a slower driver).
type System struct {
	Name  string
	Arch  core.Arch
	Costs func() *core.CostModel
}

// Table1Systems are the four kernels of Table 1.
func Table1Systems() []System {
	return []System{
		{Name: "SunOS, Fore driver", Arch: core.ArchBSD, Costs: core.SunOSForeCosts},
		{Name: "4.4 BSD", Arch: core.ArchBSD, Costs: core.DefaultCosts},
		{Name: "LRP (NI Demux)", Arch: core.ArchNILRP, Costs: core.DefaultCosts},
		{Name: "LRP (Soft Demux)", Arch: core.ArchSoftLRP, Costs: core.DefaultCosts},
	}
}

// OverloadSystems are the kernels compared in Figure 3, plus the Mogul &
// Ramakrishnan polling mitigation the paper's related work discusses.
func OverloadSystems() []System {
	return []System{
		{Name: "4.4 BSD", Arch: core.ArchBSD, Costs: core.DefaultCosts},
		{Name: "NI-LRP", Arch: core.ArchNILRP, Costs: core.DefaultCosts},
		{Name: "SOFT-LRP", Arch: core.ArchSoftLRP, Costs: core.DefaultCosts},
		{Name: "Early-Demux", Arch: core.ArchEarlyDemux, Costs: core.DefaultCosts},
		{Name: "Polling (M&R)", Arch: core.ArchPolling, Costs: core.DefaultCosts},
	}
}

// LatencySystems are the kernels compared in Figure 4.
func LatencySystems() []System {
	return []System{
		{Name: "4.4 BSD", Arch: core.ArchBSD, Costs: core.DefaultCosts},
		{Name: "NI-LRP", Arch: core.ArchNILRP, Costs: core.DefaultCosts},
		{Name: "SOFT-LRP", Arch: core.ArchSoftLRP, Costs: core.DefaultCosts},
	}
}

// rig is a reusable N-host experiment network.
type rig struct {
	eng   *sim.Engine
	nw    *netsim.Network
	hosts []*core.Host
}

// newRig builds count hosts of the given system at AddrA, AddrB, AddrC…
// and applies opt's world-level settings (the CLI fault plan).
func newRig(sys System, count int, opt Options) *rig {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	opt.applyFaults(nw)
	addrs := []pkt.Addr{AddrA, AddrB, AddrC, pkt.IP(10, 0, 0, 4)}
	names := []string{"A", "B", "C", "D"}
	r := &rig{eng: eng, nw: nw}
	for i := 0; i < count; i++ {
		r.hosts = append(r.hosts, core.NewHost(eng, nw, core.Config{
			Name:  names[i],
			Addr:  addrs[i],
			Arch:  sys.Arch,
			Costs: sys.Costs(),
		}))
	}
	return r
}

func (r *rig) shutdown() {
	for _, h := range r.hosts {
		h.Shutdown()
	}
}
