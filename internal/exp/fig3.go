package exp

import (
	"fmt"

	"lrp/internal/core"

	"lrp/internal/app"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
)

// Fig3Point is one point of Figure 3: "Throughput versus offered load"
// (offered client rate vs rate consumed by the server process).
type Fig3Point = results.Fig3Point

// Fig3Series is one system's curve.
type Fig3Series = results.Fig3Series

// fig3Rates returns the offered-load sweep (14-byte UDP packets).
func fig3Rates(quick bool) []int64 {
	if quick {
		return []int64{2000, 6000, 10000, 14000, 20000}
	}
	var rates []int64
	for r := int64(1000); r <= 20000; r += 1000 {
		rates = append(rates, r)
	}
	return rates
}

// Fig3 reproduces the overload experiment: "a client process sends short
// (14 byte) UDP packets to a server process on another machine at a fixed
// rate. The server process receives the packets and discards them
// immediately."
func Fig3(opt Options) []Fig3Series {
	spec := runner.Spec[System, int64, Fig3Point]{
		Name:    "fig3",
		Systems: OverloadSystems(),
		Axis:    fig3Rates(opt.Quick),
		Run: func(sys System, rate int64) Fig3Point {
			var d float64
			labeled(sys.Name, func() { d, _ = fig3Run(sys, rate, opt) })
			opt.progress(fmt.Sprintf("fig3: %s offered=%d delivered=%.0f", sys.Name, rate, d))
			return Fig3Point{Offered: rate, Delivered: d}
		},
	}
	grid := runner.Sweep(opt.pool(), spec)
	out := make([]Fig3Series, len(grid))
	for i, pts := range grid {
		out[i] = Fig3Series{System: spec.Systems[i].Name, Points: pts}
	}
	return out
}

// fig3Run measures delivered throughput and whether any packets were
// dropped during the measurement window (for the MLFRR analysis).
func fig3Run(sys System, rate int64, opt Options) (delivered float64, dropsInWindow uint64) {
	r := newRig(sys, 2, opt)
	defer r.shutdown()
	server := r.hosts[1]

	sink := &app.BlastSink{
		Host:           server,
		Port:           7,
		PerPktCompute:  10,
		DisturbPenalty: server.CM.RxDisturbPenalty,
	}
	sink.Start()
	src := &app.BlastSource{
		Net:     r.nw,
		Src:     AddrA,
		Dst:     AddrB,
		SPort:   9000,
		DPort:   7,
		Size:    14,
		Rate:    rate,
		Poisson: true,
		Rng:     sim.NewRand(opt.Seed + uint64(rate) + 1),
	}
	src.Start()

	warm, measure := sim.Second, 3*sim.Second
	if opt.Quick {
		warm, measure = 300*sim.Millisecond, 700*sim.Millisecond
	}
	r.eng.RunFor(warm)
	sink.Received.Reset(r.eng.Now())
	pre := totalDrops(r)
	r.eng.RunFor(measure)
	post := totalDrops(r)
	return sink.Received.Rate(r.eng.Now()), post - pre
}

// totalDrops sums every drop location on the server host.
func totalDrops(r *rig) uint64 { return hostDrops(r.hosts[1]) }

// hostDrops sums every drop location on one host.
func hostDrops(h *core.Host) uint64 {
	st := h.Stats()
	ns := h.NIC.Stats()
	return st.IPQDrops + st.ChannelDrops + st.EarlyDrops + st.SockQDrops +
		st.NoMatchDrops + st.MalformedDrops + st.ProtoDrops + st.DisabledDrops +
		ns.RxRingDrops + ns.NICDrops
}

// MLFRRRow reports the Maximum Loss-Free Receive Rate for one system
// ("the MLFRR of SOFT-LRP exceeded that of 4.4BSD by 44%").
type MLFRRRow = results.MLFRRRow

// MLFRR scans offered rates to find each system's highest loss-free rate
// and its peak delivered throughput. Each system's scan is inherently
// serial (the early-exit depends on the points seen so far), so the
// pool parallelizes across systems only.
func MLFRR(opt Options) []MLFRRRow {
	step := int64(250)
	if opt.Quick {
		step = 1000
	}
	systems := OverloadSystems()
	systems = systems[:4] // MLFRR: the paper's four kernels
	if opt.Quick {
		// The paper's MLFRR comparison is between 4.4BSD and SOFT-LRP.
		systems = []System{systems[0], systems[2]}
	}
	return runner.Map(opt.pool(), systems, func(_ int, sys System) MLFRRRow {
		row := MLFRRRow{System: sys.Name}
		lossFree := int64(0)
		labeled(sys.Name, func() {
			for rate := int64(2000); rate <= 20000; rate += step {
				d, drops := fig3Run(sys, rate, opt)
				if d > row.Peak {
					row.Peak = d
				}
				if drops == 0 {
					lossFree = rate
				} else if rate > lossFree+4*step {
					// Well past the loss-free region; the peak search can
					// stop once throughput declines.
					if d < row.Peak*0.85 {
						break
					}
				}
			}
		})
		row.MLFRR = lossFree
		opt.progress(fmt.Sprintf("mlfrr: %s = %d (peak %.0f)", sys.Name, row.MLFRR, row.Peak))
		return row
	})
}
