package exp

// Regression tests for the properties the sweep runner depends on:
// identical seeds reproduce byte-identical results, parallel execution
// is indistinguishable from serial, and the Progress plumbing delivers
// callbacks (concurrently when Parallel > 1).

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"lrp/internal/race"
	"lrp/internal/results"
)

// marshal renders series to the exact bytes the JSON suite would carry,
// so "byte-identical" means what `lrpbench -json` means by it.
func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFig3Determinism(t *testing.T) {
	serial := Options{Quick: true, Seed: 42}
	a := marshal(t, Fig3(serial))
	b := marshal(t, Fig3(serial))
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, serial runs diverged:\n%s\n%s", a, b)
	}
	par := marshal(t, Fig3(Options{Quick: true, Seed: 42, Parallel: 4}))
	if !bytes.Equal(a, par) {
		t.Fatalf("parallel run diverged from serial:\n%s\n%s", a, par)
	}
}

func TestParallelMatchesSerialAcrossDrivers(t *testing.T) {
	// The cheaper drivers, as a cross-check that every porting seam
	// (Map, Cross, Sweep assembly) preserves row order and values.
	serial := Options{Quick: true, Seed: 3}
	parallel := Options{Quick: true, Seed: 3, Parallel: 8}
	if a, b := marshal(t, CorruptFlood(serial)), marshal(t, CorruptFlood(parallel)); !bytes.Equal(a, b) {
		t.Errorf("CorruptFlood diverged:\n%s\n%s", a, b)
	}
	if a, b := marshal(t, IdleThreadLatency(serial)), marshal(t, IdleThreadLatency(parallel)); !bytes.Equal(a, b) {
		t.Errorf("IdleThreadLatency diverged:\n%s\n%s", a, b)
	}
	if a, b := marshal(t, MediaJitter(serial)), marshal(t, MediaJitter(parallel)); !bytes.Equal(a, b) {
		t.Errorf("MediaJitter diverged:\n%s\n%s", a, b)
	}
}

// TestSuiteRerunIdentical runs the whole quick suite twice in one
// process and requires byte-identical JSON. The second run executes with
// every recycling mechanism warm from the first (the engines' event free
// lists, the mbuf pools' struct and buffer free lists), so any leak of
// recycled state into fresh worlds — a stale event firing, a dirty
// buffer — shows up as a diff here.
func TestSuiteRerunIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite twice; skipped in -short")
	}
	run := func() []byte {
		suite := results.NewSuite(1, true)
		for _, name := range Experiments {
			e, err := RunExperiment(name, Options{Quick: true, Seed: 1, Parallel: 8})
			if err != nil {
				t.Fatal(err)
			}
			suite.Add(e)
		}
		var buf bytes.Buffer
		if err := suite.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("quick suite diverged between first and second in-process run (%d vs %d bytes)", len(a), len(b))
	}
}

// TestSuiteParallelismInvariant is the suite-level determinism contract
// behind `lrpbench all`: RunSuite at -parallel 1 (strictly sequential
// drivers) and at -parallel 8 (all drivers concurrent, every simulation
// world drawn from one shared pool) must produce byte-identical JSON.
// This is the cross-driver scheduler's proof obligation — canonical
// assembly order plus private deterministic worlds — at quick scale.
func TestSuiteParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite twice; skipped in -short")
	}
	if race.Enabled {
		t.Skip("full quick suite twice; too slow under the race detector (concurrency is covered by TestParallelMatchesSerialAcrossDrivers)")
	}
	encode := func(parallel int) []byte {
		suite, err := RunSuite(Options{Quick: true, Seed: 1, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := suite.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(1), encode(8)
	if !bytes.Equal(a, b) {
		t.Fatalf("suite JSON diverged between -parallel 1 and -parallel 8 (%d vs %d bytes)", len(a), len(b))
	}
}

// TestSuiteCallbacks checks the ExpStart/ExpDone plumbing RunSuite
// offers the CLI's -v timing output: one start and one done per
// experiment, under concurrent drivers.
func TestSuiteCallbacks(t *testing.T) {
	var mu sync.Mutex
	started := map[string]int{}
	finished := map[string]int{}
	names := []string{"table1", "media"}
	opt := Options{Quick: true, Seed: 1, Parallel: 4,
		ExpStart: func(name string) { mu.Lock(); started[name]++; mu.Unlock() },
		ExpDone:  func(name string) { mu.Lock(); finished[name]++; mu.Unlock() },
	}
	if _, err := RunSuite(opt, names...); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if started[name] != 1 || finished[name] != 1 {
			t.Errorf("%s: started %d finished %d, want 1/1", name, started[name], finished[name])
		}
	}
}

// progressRecorder is a concurrency-safe Progress sink.
type progressRecorder struct {
	mu    sync.Mutex
	lines []string
}

func (p *progressRecorder) cb(s string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lines = append(p.lines, s)
}

func (p *progressRecorder) count(prefix string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, l := range p.lines {
		if strings.HasPrefix(l, prefix) {
			n++
		}
	}
	return n
}

func TestProgressCallbacksSerial(t *testing.T) {
	rec := &progressRecorder{}
	rows := CorruptFlood(Options{Quick: true, Seed: 1, Progress: rec.cb})
	if got := rec.count("ablation corrupt-flood"); got != len(rows) {
		t.Errorf("want one progress line per row (%d), got %d: %q", len(rows), got, rec.lines)
	}
	rec = &progressRecorder{}
	IdleThreadLatency(Options{Quick: true, Seed: 1, Progress: rec.cb})
	if got := rec.count("ablation idle-thread"); got != 1 {
		t.Errorf("want 1 idle-thread summary line, got %d: %q", got, rec.lines)
	}
}

func TestProgressCallbacksParallel(t *testing.T) {
	rec := &progressRecorder{}
	rows := MediaJitter(Options{Quick: true, Seed: 1, Parallel: 4, Progress: rec.cb})
	if got := rec.count("media:"); got != len(rows) {
		t.Errorf("want %d media progress lines, got %d: %q", len(rows), got, rec.lines)
	}
}

func TestProgressNilIsSafe(t *testing.T) {
	// Options with no Progress must run without touching a nil func.
	opt := Options{Quick: true, Seed: 1, Parallel: 2}
	opt.progress("dropped on the floor")
	if rows := IdleThreadLatency(opt); len(rows) != 2 {
		t.Fatalf("unexpected rows %v", rows)
	}
}
