package exp

// Shape and determinism regression tests for the fault robustness
// curves. The shape thresholds themselves live in
// results.CheckFaults, so the quick sweep, the full archived run, and
// `lrpbench check` on a faults-carrying suite are all held to the same
// predicates.

import (
	"bytes"
	"testing"

	"lrp/internal/race"
	"lrp/internal/results"
)

func TestFaultsShapeChecks(t *testing.T) {
	curves := Faults(Options{Quick: true, Seed: 1, Parallel: 8})
	if len(curves) != len(results.FaultImpairments) {
		t.Fatalf("%d curves, want one per impairment (%d)", len(curves), len(results.FaultImpairments))
	}
	for _, v := range results.CheckFaults(curves) {
		t.Errorf("quick faults sweep violates a shape assertion: %s", v)
	}
}

func TestFaultsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("three quick fault sweeps; skipped in -short")
	}
	if race.Enabled {
		// Byte-identity of repeated runs is a pure-value property; the
		// race pass already drives the sweep via TestFaultsShapeChecks.
		t.Skip("three quick fault sweeps; too slow under the race detector")
	}
	a := marshal(t, Faults(Options{Quick: true, Seed: 7, Parallel: 8}))
	b := marshal(t, Faults(Options{Quick: true, Seed: 7, Parallel: 8}))
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed diverged between runs (%d vs %d bytes)", len(a), len(b))
	}
	c := marshal(t, Faults(Options{Quick: true, Seed: 7, Parallel: 3}))
	if !bytes.Equal(a, c) {
		t.Fatalf("parallelism changed the results (%d vs %d bytes)", len(a), len(c))
	}
}

func TestFaultsSeedMoves(t *testing.T) {
	if testing.Short() {
		t.Skip("two quick fault sweeps; skipped in -short")
	}
	if race.Enabled {
		t.Skip("two quick fault sweeps; too slow under the race detector")
	}
	// Different seeds must actually perturb the traffic and plans — a
	// sweep that ignores its seed would make the determinism test above
	// vacuous.
	a := marshal(t, Faults(Options{Quick: true, Seed: 7, Parallel: 8}))
	b := marshal(t, Faults(Options{Quick: true, Seed: 8, Parallel: 8}))
	if bytes.Equal(a, b) {
		t.Fatal("seeds 7 and 8 produced byte-identical sweeps")
	}
}
