package exp

// Faults: per-architecture robustness curves under injected network and
// host faults (internal/fault). The paper evaluates the architectures
// under one adversary — overload — and related work shows the receive
// path also decides how a server weathers reordering (Wu et al.),
// bursty loss, duplication, corruption, link flaps, and adaptor-level
// failures. Each curve sweeps one impairment's severity and reports,
// for every kernel, the blast goodput a server process still consumes,
// the p99 ping-pong latency beside that blast, and the CPU share a
// competing compute process keeps — the same three axes (throughput,
// latency, CPU accounting) the paper's own figures use.

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/fault"
	"lrp/internal/kernel"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
)

// FaultPoint, FaultSeries and FaultCurve alias the results row types.
type (
	FaultPoint  = results.FaultPoint
	FaultSeries = results.FaultSeries
	FaultCurve  = results.FaultCurve
)

// flapPeriodUs is the link-flap cycle length; the severity axis is the
// fraction of each cycle the link is down.
const flapPeriodUs = 200_000

// faultBlastRate is the background blast rate for the UDP robustness
// rig: high enough that receive-path overhead shows, comfortably below
// every system's MLFRR (BSD's is ~7250 in the archived suite) so
// severity — not offered load — moves the curves.
const faultBlastRate = 5000

// faultCurveDef describes one impairment sweep: how to build the fault
// configuration for a given severity. install arms a fresh rig before
// the workload starts; severity 0 never installs anything, so every
// curve starts from an unimpaired baseline.
type faultCurveDef struct {
	impairment string
	axis       string
	sevs       []float64 // full severity axis (first entry 0)
	quick      []float64 // reduced axis for -quick
	install    func(r *rig, sev float64, seed uint64)
}

// portPlan returns an install that compiles a plan and attaches it to
// the server's port (traffic into B is impaired; replies are not).
func portPlan(mk func(seed uint64, sev float64) fault.Plan) func(*rig, float64, uint64) {
	return func(r *rig, sev float64, seed uint64) {
		if err := r.nw.SetPortFaults(AddrB, fault.MustNew(mk(seed, sev))); err != nil {
			panic(err)
		}
	}
}

// nicPlan returns an install that arms host-side faults on the server's
// adaptor and mbuf pool.
func nicPlan(mk func(r *rig, seed uint64, sev float64) fault.NICPlan) func(*rig, float64, uint64) {
	return func(r *rig, sev float64, seed uint64) {
		server := r.hosts[1]
		if _, err := fault.InstallNIC(r.eng, server.NIC, server.Pool, mk(r, seed, sev)); err != nil {
			panic(err)
		}
	}
}

// faultCurves is the UDP robustness sweep catalogue: every pipeline
// impairment plus the three host-side fault classes.
func faultCurves() []faultCurveDef {
	return []faultCurveDef{
		{
			impairment: fault.KindLoss, axis: "loss rate",
			sevs:  []float64{0, 0.05, 0.1, 0.2, 0.4},
			quick: []float64{0, 0.1, 0.4},
			install: portPlan(func(seed uint64, sev float64) fault.Plan {
				return fault.LossPlan(seed, sev)
			}),
		},
		{
			impairment: fault.KindGilbertElliott, axis: "average loss rate (burst dwell 10 pkts)",
			sevs:  []float64{0, 0.05, 0.1, 0.2, 0.4},
			quick: []float64{0, 0.1, 0.4},
			install: portPlan(func(seed uint64, sev float64) fault.Plan {
				return fault.GilbertElliottPlan(seed, sev, 10)
			}),
		},
		{
			impairment: fault.KindReorder, axis: "reorder rate (1 ms hold-back)",
			sevs:  []float64{0, 0.1, 0.25, 0.5},
			quick: []float64{0, 0.25, 0.5},
			install: portPlan(func(seed uint64, sev float64) fault.Plan {
				return fault.ReorderPlan(seed, sev, 1000)
			}),
		},
		{
			impairment: fault.KindDuplicate, axis: "duplication rate (50 µs copy gap)",
			sevs:  []float64{0, 0.1, 0.25, 0.5},
			quick: []float64{0, 0.25, 0.5},
			install: portPlan(func(seed uint64, sev float64) fault.Plan {
				return fault.DuplicatePlan(seed, sev, 50)
			}),
		},
		{
			impairment: fault.KindCorrupt, axis: "corruption rate",
			sevs:  []float64{0, 0.1, 0.25, 0.5},
			quick: []float64{0, 0.25, 0.5},
			install: portPlan(func(seed uint64, sev float64) fault.Plan {
				return fault.CorruptPlan(seed, sev)
			}),
		},
		{
			impairment: fault.KindJitter, axis: "jitter bound µs",
			sevs:  []float64{0, 200, 1000, 5000},
			quick: []float64{0, 1000, 5000},
			install: portPlan(func(seed uint64, sev float64) fault.Plan {
				return fault.JitterPlan(seed, int64(sev))
			}),
		},
		{
			impairment: fault.KindFlap, axis: "link-down fraction (200 ms cycle)",
			sevs:  []float64{0, 0.1, 0.25, 0.5},
			quick: []float64{0, 0.25, 0.5},
			install: portPlan(func(seed uint64, sev float64) fault.Plan {
				down := int64(sev * flapPeriodUs)
				return fault.FlapPlan(seed, down, flapPeriodUs-down)
			}),
		},
		{
			impairment: "ring-overrun", axis: "DMA-ring drop rate",
			sevs:  []float64{0, 0.1, 0.25, 0.5},
			quick: []float64{0, 0.25, 0.5},
			install: nicPlan(func(_ *rig, seed uint64, sev float64) fault.NICPlan {
				return fault.NICPlan{Seed: seed, RingOverrun: []fault.RingFault{{Rate: sev}}}
			}),
		},
		{
			impairment: "spurious-intr", axis: "spurious interrupts per second",
			sevs:  []float64{0, 1000, 5000, 20000},
			quick: []float64{0, 5000, 20000},
			install: nicPlan(func(_ *rig, seed uint64, sev float64) fault.NICPlan {
				return fault.NICPlan{Seed: seed, SpuriousIntrs: []fault.IntrFault{{PeriodUs: int64(1e6 / sev)}}}
			}),
		},
		{
			impairment: "pool-pressure", axis: "fraction of mbuf pool withheld",
			sevs:  []float64{0, 0.99, 0.997, 0.999},
			quick: []float64{0, 0.99, 0.999},
			install: nicPlan(func(r *rig, seed uint64, sev float64) fault.NICPlan {
				amount := int(sev * float64(r.hosts[1].CM.MbufPoolLimit))
				return fault.NICPlan{Seed: seed, PoolPressure: []fault.PressureFault{{Amount: amount}}}
			}),
		},
	}
}

// Faults runs every robustness curve: the UDP rig across all five
// kernels for each impairment class, then TCP goodput vs. reordering
// depth.
func Faults(opt Options) []FaultCurve {
	defs := faultCurves()
	out := make([]FaultCurve, 0, len(defs)+1)
	for ci, def := range defs {
		sevs := def.sevs
		if opt.Quick {
			sevs = def.quick
		}
		// The axis sweeps severity indices so each point can derive a
		// stable per-(curve, severity) seed for its plan and generators.
		idx := make([]int, len(sevs))
		for i := range idx {
			idx[i] = i
		}
		ci := ci
		def := def
		spec := runner.Spec[System, int, FaultPoint]{
			Name:    "faults/" + def.impairment,
			Systems: OverloadSystems(),
			Axis:    idx,
			Run: func(sys System, si int) FaultPoint {
				sev := sevs[si]
				seed := opt.Seed + uint64(ci*101+si+1)
				var p FaultPoint
				labeled(sys.Name, func() { p = udpFaultPoint(sys, sev, def.install, seed, opt) })
				opt.progress(fmt.Sprintf("faults/%s: %s sev=%g goodput=%.0f p99=%dµs lost=%d victim=%.2f",
					def.impairment, sys.Name, sev, p.GoodputPps, p.P99Us, p.ProbesLost, p.VictimShare))
				return p
			},
		}
		grid := runner.Sweep(opt.pool(), spec)
		curve := FaultCurve{Impairment: def.impairment, Axis: def.axis}
		for i, pts := range grid {
			curve.Series = append(curve.Series, FaultSeries{System: spec.Systems[i].Name, Points: pts})
		}
		out = append(out, curve)
	}
	out = append(out, tcpReorderCurve(opt))
	return out
}

// udpFaultPoint measures one (system, severity) cell of a UDP
// robustness curve: blast goodput into a consuming server process, p99
// ping-pong RTT alongside it, and the CPU share a competing compute
// process keeps, all over one measurement window.
func udpFaultPoint(sys System, sev float64, install func(*rig, float64, uint64), seed uint64, opt Options) FaultPoint {
	r := newRig(sys, 3, opt)
	defer r.shutdown()
	server := r.hosts[1]
	if sev != 0 && install != nil {
		install(r, sev, seed)
	}

	victim := server.K.Spawn("victim", 0, func(p *kernel.Proc) {
		for {
			p.Compute(sim.Millisecond)
		}
	})
	sink := &app.BlastSink{
		Host:           server,
		Port:           7,
		PerPktCompute:  10,
		DisturbPenalty: server.CM.RxDisturbPenalty,
	}
	sink.Start()
	src := &app.BlastSource{
		Net:     r.nw,
		Src:     AddrC,
		Dst:     AddrB,
		SPort:   9000,
		DPort:   7,
		Size:    14,
		Rate:    faultBlastRate,
		Poisson: true,
		Rng:     sim.NewRand(seed + 0x1000),
	}
	src.Start()

	warm, measure := 500*sim.Millisecond, 2*sim.Second
	if opt.Quick {
		warm, measure = 200*sim.Millisecond, 600*sim.Millisecond
	}
	pps := &app.PingPongServer{Host: server, Port: 8}
	pps.Start()
	ppc := &app.PingPongClient{
		Host:         r.hosts[0],
		ServerAddr:   AddrB,
		ServerPort:   8,
		MsgSize:      14,
		Iterations:   int(measure / (2 * sim.Millisecond)),
		StartAfter:   warm,
		Interval:     2 * sim.Millisecond,
		ReplyTimeout: 20 * sim.Millisecond,
	}
	ppc.Start()

	r.eng.RunFor(warm)
	sink.Received.Reset(r.eng.Now())
	vBase, t0 := victim.UTime, r.eng.Now()
	r.eng.RunFor(measure)
	goodput := sink.Received.Rate(r.eng.Now())
	share := float64(victim.UTime-vBase) / float64(r.eng.Now()-t0)
	// Tail window: let the last probes resolve (reply or timeout) so the
	// loss count is settled.
	r.eng.RunFor(40 * sim.Millisecond)

	p99 := int64(-1)
	if ppc.RTT.Count() > 0 {
		p99 = ppc.RTT.Percentile(99)
	}
	return FaultPoint{
		Severity:    sev,
		GoodputPps:  goodput,
		P99Us:       p99,
		ProbesLost:  ppc.Lost,
		VictimShare: share,
	}
}

// tcpReorderCurve sweeps TCP goodput against reordering depth: 10% of
// segments toward the server are held back by a growing delay, the
// delay-induced reordering Wu et al. show interacting with the receive
// architecture. Goodput is bytes landed in a fixed window, so a stalled
// transfer scores what it actually moved.
func tcpReorderCurve(opt Options) FaultCurve {
	delays := []int64{0, 200, 500, 1000, 2000}
	if opt.Quick {
		delays = []int64{0, 500, 2000}
	}
	idx := make([]int, len(delays))
	for i := range idx {
		idx[i] = i
	}
	spec := runner.Spec[System, int, FaultPoint]{
		Name:    "faults/tcp-reorder",
		Systems: LatencySystems(),
		Axis:    idx,
		Run: func(sys System, si int) FaultPoint {
			delay := delays[si]
			var p FaultPoint
			labeled(sys.Name, func() { p = tcpFaultPoint(sys, delay, opt.Seed+uint64(0x5000+si), opt) })
			opt.progress(fmt.Sprintf("faults/tcp-reorder: %s delay=%dµs tcp=%.1f Mbit/s", sys.Name, delay, p.TCPMbps))
			return p
		},
	}
	grid := runner.Sweep(opt.pool(), spec)
	curve := FaultCurve{Impairment: "tcp-reorder", Axis: "reorder hold-back µs (10% of segments)"}
	for i, pts := range grid {
		curve.Series = append(curve.Series, FaultSeries{System: spec.Systems[i].Name, Points: pts})
	}
	return curve
}

// tcpFaultPoint measures one TCP-vs-reordering cell.
func tcpFaultPoint(sys System, delayUs int64, seed uint64, opt Options) FaultPoint {
	r := newRig(sys, 2, opt)
	defer r.shutdown()
	if delayUs > 0 {
		if err := r.nw.SetPortFaults(AddrB, fault.MustNew(fault.ReorderPlan(seed, 0.1, delayUs))); err != nil {
			panic(err)
		}
	}
	window := 2 * sim.Second
	total := 64 << 20 // far more than any window can move: the transfer never finishes early
	if opt.Quick {
		window = 800 * sim.Millisecond
		total = 16 << 20
	}
	x := &app.TCPTransfer{
		Server:     r.hosts[1],
		Client:     r.hosts[0],
		ServerAddr: AddrB,
		Port:       5001,
		TotalBytes: total,
	}
	x.Start()
	r.eng.RunFor(window)
	mbps := float64(x.Received) * 8 / float64(window)
	return FaultPoint{Severity: float64(delayUs), TCPMbps: mbps}
}
