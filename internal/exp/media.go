package exp

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
)

// MediaRow reports delivery jitter for a 30 fps media stream competing
// with bursty background traffic — the paper's §2.2 multimedia
// motivation ("the delivery of an incoming message to the receiving
// application can be delayed by a burst of subsequently arriving
// packets"), turned into a measurement.
type MediaRow = results.MediaRow

// MediaJitter measures frame-delivery jitter with and without a 6k pkts/s
// background blast at another socket on the same host.
func MediaJitter(opt Options) []MediaRow {
	cells := runner.Cross(LatencySystems(), []int64{0, 6000})
	return runner.Map(opt.pool(), cells, func(_ int, c runner.Pair[System, int64]) MediaRow {
		var r MediaRow
		labeled(c.A.Name, func() { r = mediaRun(c.A, c.B, opt) })
		opt.progress(fmt.Sprintf("media: %s bg=%d mean=%.0fµs p99=%dµs",
			r.System, r.BgRate, r.MeanJitterUs, r.P99JitterUs))
		return r
	})
}

func mediaRun(sys System, bgRate int64, opt Options) MediaRow {
	r := newRig(sys, 3, opt)
	defer r.shutdown()
	server := r.hosts[1]

	// Spinners keep the CPU busy, per the Fig. 4 methodology.
	app.Spinner(server, "spin")

	player := &app.MediaPlayer{Host: server, Port: 5004, PerFrameCompute: 500}
	player.Start()
	src := &app.MediaSource{
		Net: r.nw, Src: AddrA, Dst: AddrB, SPort: 5004, DPort: 5004,
	}
	src.Start()

	// Background blast at a different socket.
	if bgRate > 0 {
		sink := &app.BlastSink{Host: server, Port: 9, PerPktCompute: 10}
		sink.Start()
		blast := &app.BlastSource{
			Net: r.nw, Src: AddrC, Dst: AddrB, SPort: 9000, DPort: 9,
			Size: 14, Rate: bgRate, Poisson: true,
			Rng: sim.NewRand(opt.Seed + uint64(bgRate)),
		}
		blast.Start()
	}

	dur := 10 * sim.Second
	if opt.Quick {
		dur = 3 * sim.Second
	}
	r.eng.RunFor(dur)
	lost := int64(src.Sent.Total()) - int64(player.Frames.Total())
	return MediaRow{
		System:       sys.Name,
		BgRate:       bgRate,
		MeanJitterUs: player.Jitter.Mean(),
		P99JitterUs:  player.Jitter.Percentile(99),
		FramesLost:   lost,
	}
}
