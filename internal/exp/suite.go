package exp

import (
	"fmt"

	"lrp/internal/results"
)

// Experiments lists the eight experiment names in canonical suite
// order — the order `lrpbench all` runs and reports them. The fault
// robustness curves ("faults") are deliberately not part of the
// canonical suite: they run standalone via `lrpbench faults`, so the
// archived `lrpbench all` output stays byte-stable.
var Experiments = []string{
	"table1", "fig3", "mlfrr", "fig4", "table2", "fig5", "ablations", "media",
}

// RunExperiment runs one named experiment and returns its typed
// payload. Unknown names are an error, not a panic, so the CLI can
// reject bad verbs cleanly.
func RunExperiment(name string, opt Options) (results.Experiment, error) {
	e := results.Experiment{Name: name}
	switch name {
	case "table1":
		e.Table1 = Table1(opt)
	case "fig3":
		e.Fig3 = Fig3(opt)
	case "mlfrr":
		e.MLFRR = MLFRR(opt)
	case "fig4":
		e.Fig4 = Fig4(opt)
	case "table2":
		e.Table2 = Table2(opt)
	case "fig5":
		e.Fig5 = Fig5(opt)
	case "ablations":
		e.Ablations = Ablations(opt)
	case "media":
		e.Media = MediaJitter(opt)
	case "faults":
		e.Faults = Faults(opt)
	default:
		return results.Experiment{}, fmt.Errorf("exp: unknown experiment %q", name)
	}
	return e, nil
}

// RunSuite runs the named experiments (all eight when names is empty)
// into a fresh suite. Experiments run one after another in the given
// order; parallelism lives inside each driver's sweep, so suite output
// is deterministic for a given seed regardless of Options.Parallel.
func RunSuite(opt Options, names ...string) (*results.Suite, error) {
	if len(names) == 0 {
		names = Experiments
	}
	s := results.NewSuite(opt.Seed, opt.Quick)
	for _, name := range names {
		e, err := RunExperiment(name, opt)
		if err != nil {
			return nil, err
		}
		s.Add(e)
	}
	return s, nil
}
