package exp

import (
	"context"
	"fmt"
	"runtime/pprof"

	"lrp/internal/results"
	"lrp/internal/runner"
)

// Experiments lists the eight experiment names in canonical suite
// order — the order `lrpbench all` runs and reports them. The fault
// robustness curves ("faults") and the multi-core scaling sweep ("smp")
// are deliberately not part of the canonical suite: they run standalone
// via `lrpbench faults` / `lrpbench smp`, so the archived `lrpbench
// all` output stays byte-stable.
var Experiments = []string{
	"table1", "fig3", "mlfrr", "fig4", "table2", "fig5", "ablations", "media",
}

// RunExperiment runs one named experiment and returns its typed
// payload. Unknown names are an error, not a panic, so the CLI can
// reject bad verbs cleanly. The run executes under a pprof
// "experiment" label so CPU profiles attribute samples per experiment.
func RunExperiment(name string, opt Options) (results.Experiment, error) {
	e := results.Experiment{Name: name}
	var err error
	pprof.Do(context.Background(), pprof.Labels("experiment", name), func(context.Context) {
		switch name {
		case "table1":
			e.Table1 = Table1(opt)
		case "fig3":
			e.Fig3 = Fig3(opt)
		case "mlfrr":
			e.MLFRR = MLFRR(opt)
		case "fig4":
			e.Fig4 = Fig4(opt)
		case "table2":
			e.Table2 = Table2(opt)
		case "fig5":
			e.Fig5 = Fig5(opt)
		case "ablations":
			e.Ablations = Ablations(opt)
		case "media":
			e.Media = MediaJitter(opt)
		case "faults":
			e.Faults = Faults(opt)
		case "smp":
			e.SMP = SMP(opt)
		case "wan":
			e.WAN = WAN(opt)
		default:
			err = fmt.Errorf("exp: unknown experiment %q", name)
		}
	})
	if err != nil {
		return results.Experiment{}, err
	}
	return e, nil
}

// RunSuite runs the named experiments (the canonical eight when names
// is empty) into a fresh suite. With Parallel <= 1 the drivers run
// sequentially in the given order. With Parallel > 1 all drivers run
// concurrently and every sweep point across the whole suite draws from
// one shared Parallel-worker pool, so independent simulation worlds
// from different experiments overlap instead of each driver's stragglers
// serializing the suite. Results are assembled in canonical order and
// every world is a private deterministic simulation, so suite output is
// byte-identical for any Parallel value.
func RunSuite(opt Options, names ...string) (*results.Suite, error) {
	if len(names) == 0 {
		names = Experiments
	}
	s := results.NewSuite(opt.Seed, opt.Quick)
	concurrent := opt.Parallel > 1 && len(names) > 1
	if concurrent && opt.Pool == nil {
		opt.Pool = runner.NewPool(opt.Parallel)
	}
	type outcome struct {
		e   results.Experiment
		err error
	}
	runOne := func(name string) outcome {
		if opt.ExpStart != nil {
			opt.ExpStart(name)
		}
		e, err := RunExperiment(name, opt)
		if opt.ExpDone != nil {
			opt.ExpDone(name)
		}
		return outcome{e: e, err: err}
	}
	var outs []outcome
	if concurrent {
		// The drivers are coordinators: they hold no pool slot themselves
		// (see runner.Concurrent), so their sweep jobs share opt.Pool
		// without risk of starving each other.
		outs = runner.Concurrent(names, func(_ int, name string) outcome {
			return runOne(name)
		})
	} else {
		outs = make([]outcome, 0, len(names))
		for _, name := range names {
			outs = append(outs, runOne(name))
		}
	}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		s.Add(o.e)
	}
	return s, nil
}
