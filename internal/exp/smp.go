package exp

// SMP: multi-core scaling curves in the COREC tradition — single-queue
// versus multi-queue receive on M host CPUs. The paper's evaluation is
// uniprocessor, but its central tension reappears on SMP hardware: a
// single interrupt line serializes all receive processing on one CPU
// (the uniprocessor picture, however many cores exist), while RSS
// steering spreads flows — and their interrupt work — across cores.
// NI-LRP adds the third corner of the tradeoff: its demultiplexing
// runs on the NIC's embedded processor, which does not scale with host
// cores, so NI-LRP's curve climbs with core count only until the
// adaptor saturates.

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/nic"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
	"lrp/internal/smp"
)

// SMPPoint and SMPSeries alias the results row types.
type (
	SMPPoint  = results.SMPPoint
	SMPSeries = results.SMPSeries
)

// smpCores is the swept core-count axis.
var smpCores = []int{1, 2, 4}

// smpPerCoreRate is the blast rate of each per-core flow, chosen so the
// aggregate at 4 cores comfortably overloads a single interrupt CPU
// (the single-queue ceiling shows) while one flow stays well inside one
// CPU's capacity (the multi-queue curve can scale).
const smpPerCoreRate = 6000

// smpCosts is the default model with the NIC's embedded per-packet
// demux cost raised: host CPUs multiply with the core count but the
// adaptor's processor does not, and with the default 10 µs its
// saturation point (~100k pkt/s) sits far outside the swept load. At
// 60 µs the adaptor saturates near 16.7k pkt/s — between the 2-core
// and 4-core aggregate offered loads — so NI-LRP's scaling limit lands
// inside the experiment.
func smpCosts() *core.CostModel {
	cm := core.DefaultCosts()
	cm.NICDemuxCost = 60
	return cm
}

// smpSystems are the three kernels with a defined parallel story: BSD
// (per-CPU softnet queues under multi-queue), SOFT-LRP (per-queue soft
// demux), NI-LRP (per-channel interrupt routing).
func smpSystems() []System {
	return []System{
		{Name: "4.4 BSD", Arch: core.ArchBSD, Costs: smpCosts},
		{Name: "NI-LRP", Arch: core.ArchNILRP, Costs: smpCosts},
		{Name: "SOFT-LRP", Arch: core.ArchSoftLRP, Costs: smpCosts},
	}
}

// smpCell is one sweep cell: a queue mode at a core count.
type smpCell struct {
	multi bool
	cores int
}

// smpCells enumerates the sweep: the single-queue curve then the
// multi-queue curve, each across the core axis.
func smpCells() []smpCell {
	var cells []smpCell
	for _, multi := range []bool{false, true} {
		for _, cores := range smpCores {
			cells = append(cells, smpCell{multi: multi, cores: cores})
		}
	}
	return cells
}

// steerPort returns a source port whose RSS hash lands the flow
// (AddrC -> AddrB, sport -> dport) on queue q of nq. The search is
// deterministic, so the same flows are offered in every mode.
func steerPort(nq, q int, dport uint16) uint16 {
	for s := uint16(9000); ; s++ {
		if int(nic.RSSHash(AddrC, AddrB, s, dport)%uint32(nq)) == q {
			return s
		}
	}
}

// SMP runs the scaling sweep and returns one series per (system,
// queue-mode) pair, each with a point per core count.
func SMP(opt Options) []SMPSeries {
	cells := smpCells()
	idx := make([]int, len(cells))
	for i := range idx {
		idx[i] = i
	}
	spec := runner.Spec[System, int, SMPPoint]{
		Name:    "smp",
		Systems: smpSystems(),
		Axis:    idx,
		Run: func(sys System, ci int) SMPPoint {
			cell := cells[ci]
			var p SMPPoint
			labeled(sys.Name, func() { p = smpPoint(sys, cell.multi, cell.cores, opt) })
			mode := "single"
			if cell.multi {
				mode = "multi"
			}
			opt.progress(fmt.Sprintf("smp: %s %s cores=%d goodput=%.0f p99=%dµs ipis=%d steals=%d",
				sys.Name, mode, cell.cores, p.GoodputPps, p.P99Us, p.IPIs, p.Steals))
			return p
		},
	}
	grid := runner.Sweep(opt.pool(), spec)
	var out []SMPSeries
	for si, sys := range spec.Systems {
		for _, multi := range []bool{false, true} {
			mode := "single"
			if multi {
				mode = "multi"
			}
			s := SMPSeries{System: sys.Name, Queues: mode}
			for ci, cell := range cells {
				if cell.multi == multi {
					s.Points = append(s.Points, grid[si][ci])
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// smpPoint measures one (system, mode, cores) cell: per-core RSS-steered
// blast flows into per-CPU sink processes, a latency probe beside them,
// and the cluster's SMP counters over the measurement window.
func smpPoint(sys System, multi bool, cores int, opt Options) SMPPoint {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	opt.applyFaults(nw)
	client := core.NewHost(eng, nw, core.Config{
		Name: "A", Addr: AddrA, Arch: sys.Arch, Costs: sys.Costs(),
	})
	queues := 1
	if multi {
		queues = cores
	}
	server := core.NewHost(eng, nw, core.Config{
		Name: "B", Addr: AddrB, Arch: sys.Arch, Costs: sys.Costs(),
		CPUs: cores, RxQueues: queues,
	})
	defer client.Shutdown()
	defer server.Shutdown()

	// One flow per core: sink i lives on CPU i and its flow's source port
	// is chosen so the RSS hash steers it to queue i (affinity map is the
	// default queue i -> CPU i). The same ports are used in single-queue
	// mode, so both modes face byte-identical traffic.
	sinks := make([]*app.BlastSink, cores)
	for i := 0; i < cores; i++ {
		dport := uint16(100 + i)
		sinks[i] = &app.BlastSink{
			Host:           server,
			Port:           dport,
			CPU:            i,
			PerPktCompute:  10,
			DisturbPenalty: server.CM.RxDisturbPenalty,
		}
		sinks[i].Start()
		src := &app.BlastSource{
			Net:     nw,
			Src:     AddrC,
			Dst:     AddrB,
			SPort:   steerPort(cores, i, dport),
			DPort:   dport,
			Size:    14,
			Rate:    smpPerCoreRate,
			Poisson: true,
			Rng:     sim.NewRand(opt.Seed + uint64(0x53AD0+cores*31+i)),
		}
		src.Start()
	}

	warm, measure := 500*sim.Millisecond, 2*sim.Second
	if opt.Quick {
		warm, measure = 200*sim.Millisecond, 600*sim.Millisecond
	}
	pps := &app.PingPongServer{Host: server, Port: 200, CPU: cores - 1}
	pps.Start()
	ppc := &app.PingPongClient{
		Host:         client,
		ServerAddr:   AddrB,
		ServerPort:   200,
		MsgSize:      14,
		Iterations:   int(measure / (2 * sim.Millisecond)),
		StartAfter:   warm,
		Interval:     2 * sim.Millisecond,
		ReplyTimeout: 20 * sim.Millisecond,
	}
	ppc.Start()

	eng.RunFor(warm)
	for _, s := range sinks {
		s.Received.Reset(eng.Now())
	}
	var before []smp.CPUStats
	if server.Cluster != nil {
		before = server.Cluster.Stats()
	}
	eng.RunFor(measure)
	goodput := 0.0
	for _, s := range sinks {
		goodput += s.Received.Rate(eng.Now())
	}
	p := SMPPoint{
		Cores:      cores,
		OfferedPps: int64(smpPerCoreRate * cores),
		GoodputPps: goodput,
	}
	if server.Cluster != nil {
		after := server.Cluster.Stats()
		for i := range after {
			p.RemoteWakes += after[i].RemoteWakes - before[i].RemoteWakes
			p.IPIs += after[i].IPIsDelivered - before[i].IPIsDelivered
			p.Steals += after[i].Steals - before[i].Steals
			p.Halts += after[i].Halts - before[i].Halts
		}
	}
	// Tail window: let the last probes resolve before reading the
	// histogram.
	eng.RunFor(40 * sim.Millisecond)
	p.P99Us = -1
	if ppc.RTT.Count() > 0 {
		p.P99Us = ppc.RTT.Percentile(99)
	}
	return p
}
