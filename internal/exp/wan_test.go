package exp

// Shape and determinism regression tests for the internet-scale WAN
// sweep. The shape thresholds live in results.CheckWAN, so the quick
// sweep here, the full archived run, and `lrpbench check` on a
// wan-carrying suite are all held to the same predicates.

import (
	"bytes"
	"testing"

	"lrp/internal/race"
	"lrp/internal/results"
)

func TestWANShapeChecks(t *testing.T) {
	series := WAN(Options{Quick: true, Seed: 1, Parallel: 8})
	want := len(wanCellList()) * len(wanSystems())
	if len(series) != want {
		t.Fatalf("%d series, want one per (cell, system) = %d", len(series), want)
	}
	for _, v := range results.CheckWAN(series) {
		t.Errorf("quick wan sweep violates a shape assertion: %s", v)
	}
}

func TestWANDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("three quick wan sweeps; skipped in -short")
	}
	if race.Enabled {
		// Byte-identity of repeated runs is a pure-value property; the
		// race pass already drives the sweep via TestWANShapeChecks.
		t.Skip("three quick wan sweeps; too slow under the race detector")
	}
	a := marshal(t, WAN(Options{Quick: true, Seed: 7, Parallel: 8}))
	b := marshal(t, WAN(Options{Quick: true, Seed: 7, Parallel: 8}))
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed diverged between runs (%d vs %d bytes)", len(a), len(b))
	}
	c := marshal(t, WAN(Options{Quick: true, Seed: 7, Parallel: 3}))
	if !bytes.Equal(a, c) {
		t.Fatalf("parallelism changed the results (%d vs %d bytes)", len(a), len(c))
	}
}

func TestWANSeedMoves(t *testing.T) {
	if testing.Short() {
		t.Skip("two quick wan sweeps; skipped in -short")
	}
	if race.Enabled {
		t.Skip("two quick wan sweeps; too slow under the race detector")
	}
	a := marshal(t, WAN(Options{Quick: true, Seed: 7, Parallel: 8}))
	b := marshal(t, WAN(Options{Quick: true, Seed: 8, Parallel: 8}))
	if bytes.Equal(a, b) {
		t.Fatal("seeds 7 and 8 produced byte-identical sweeps")
	}
}
