package exp

// Ablations: experiments that isolate the contribution of individual LRP
// design choices, following the paper's §3 argument that "the two key
// techniques used in LRP — lazy protocol processing at the priority of
// the receiver, and early demultiplexing — are both necessary".

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
)

// AblationRow is one measurement of an ablation experiment.
type AblationRow = results.AblationRow

// Ablations runs the suite and returns all rows.
func Ablations(opt Options) []AblationRow {
	var rows []AblationRow
	rows = append(rows, CorruptFlood(opt)...)
	rows = append(rows, IdleThreadLatency(opt)...)
	rows = append(rows, EarlyDiscardContribution(opt)...)
	rows = append(rows, FilterDemuxAblation(opt)...)
	return rows
}

// CorruptFlood demonstrates the paper's argument for why early
// demultiplexing alone is insufficient: "the system is still defenseless
// against overload from incoming packets that do not contain valid user
// data. For example, a flood of ... corrupted data packets can still
// cause livelock. This is because processing of these packets does not
// result in the placement of data in the socket queue, thus defeating the
// only feedback mechanism that can effect early packet discard."
//
// A victim process computes while a flood of checksum-corrupted UDP
// packets (destined to a bound socket) arrives. Under Early-Demux every
// corrupt packet is fully processed in softint context (the socket queue
// never fills, so early discard never triggers) and the victim starves;
// under SOFT-LRP the receiver pays for the garbage at its own priority
// and the victim keeps its share.
func CorruptFlood(opt Options) []AblationRow {
	rate := int64(14000)
	dur := 2 * sim.Second
	if opt.Quick {
		dur = sim.Second
	}
	systems := []System{
		{Name: "Early-Demux", Arch: core.ArchEarlyDemux, Costs: core.DefaultCosts},
		{Name: "SOFT-LRP", Arch: core.ArchSoftLRP, Costs: core.DefaultCosts},
	}
	return runner.Map(opt.pool(), systems, func(_ int, sys System) AblationRow {
		var share float64
		labeled(sys.Name, func() { share = corruptFloodRun(sys, rate, dur, opt) })
		return AblationRow{
			Experiment: "corrupt-flood",
			Variant:    sys.Name,
			Metric:     "victim_cpu_share",
			Value:      share,
		}
	})
}

// corruptFloodRun measures one corrupt-flood world: the victim's CPU
// share while a checksum-corrupt blast targets a stalled receiver.
func corruptFloodRun(sys System, rate int64, dur sim.Time, opt Options) float64 {
	r := newRig(sys, 2, opt)
	server := r.hosts[1]
	victim := server.K.Spawn("victim", 0, func(p *kernel.Proc) {
		for {
			p.Compute(sim.Millisecond)
		}
	})
	// The flood's destination: a bound socket whose owner never reads
	// (a stalled receiver).
	server.K.Spawn("stalled-recv", 0, func(p *kernel.Proc) {
		s := server.NewUDPSocket(p)
		_ = server.BindUDP(s, 7)
		p.Sleep(&kernel.WaitQ{})
	})
	good := pkt.UDPPacket(AddrA, AddrB, 9, 7, 1, 64, make([]byte, 14), true)
	bad := pkt.Corrupt(good)
	gap := sim.Second / rate
	var pump func()
	pump = func() {
		if r.eng.Now() >= dur {
			return
		}
		r.nw.Inject(bad)
		r.eng.After(gap, pump)
	}
	r.eng.At(0, pump)
	r.eng.RunFor(dur)
	share := float64(victim.UTime) / float64(dur)
	opt.progress(fmt.Sprintf("ablation corrupt-flood %s: victim share %.2f", sys.Name, share))
	r.shutdown()
	return share
}

// IdleThreadLatency isolates §3.3's idle-time protocol processing: a
// receiver blocks on "disk I/O" before calling receive; without the idle
// thread the packet waits raw on the channel and the receive call must
// pay the protocol processing itself; with it, the otherwise-idle CPU has
// already produced a ready datagram, so the receive call only copies.
// The metric is the receive system call's duration.
func IdleThreadLatency(opt Options) []AblationRow {
	run := func(noIdle bool) float64 {
		eng := sim.NewEngine()
		nw := netsim.New(eng)
		opt.applyFaults(nw)
		server := core.NewHost(eng, nw, core.Config{
			Name: "server", Addr: AddrB, Arch: core.ArchSoftLRP, NoIdleThread: noIdle,
		})
		defer server.Shutdown()
		var sum, n int64
		server.K.Spawn("disk-bound", 0, func(p *kernel.Proc) {
			s := server.NewUDPSocket(p)
			_ = server.BindUDP(s, 7)
			for {
				// The disk read: sleep until the next 10 ms boundary, so the
				// packet (arriving at 9.5 ms of each cycle) lands while this
				// process is blocked on I/O, leaving the CPU idle.
				p.Delay(10*sim.Millisecond - p.Now()%(10*sim.Millisecond))
				callStart := p.Now()
				if _, err := server.RecvFrom(p, s); err != nil {
					return
				}
				sum += p.Now() - callStart
				n++
			}
		})
		// One packet per disk cycle, arriving 500µs before the disk wait
		// ends — the idle CPU has time to process it, so the receive call
		// should find it ready.
		var pump func()
		pump = func() {
			nw.Inject(pkt.UDPPacket(AddrA, AddrB, 9, 7, 1, 64, []byte("block"), true))
			eng.After(10*sim.Millisecond, pump)
		}
		eng.At(9500, pump)
		dur := 2 * sim.Second
		if opt.Quick {
			dur = 500 * sim.Millisecond
		}
		eng.RunFor(dur)
		if n == 0 {
			return 0
		}
		return float64(sum) / float64(n)
	}
	vals := runner.Map(opt.pool(), []bool{false, true}, func(_ int, noIdle bool) float64 {
		var v float64
		labeled("SOFT-LRP", func() { v = run(noIdle) })
		return v
	})
	with, without := vals[0], vals[1]
	opt.progress(fmt.Sprintf("ablation idle-thread: recv call %.0fµs with, %.0fµs without", with, without))
	return []AblationRow{
		{Experiment: "idle-thread", Variant: "enabled", Metric: "recv_call_µs", Value: with},
		{Experiment: "idle-thread", Variant: "disabled", Metric: "recv_call_µs", Value: without},
	}
}

// EarlyDiscardContribution removes early discard from SOFT-LRP by making
// the channel queues effectively unbounded. The overloaded socket's
// backlog then pins the whole mbuf pool, and — exactly as the paper warns
// for BSD's shared resources ("aggregate traffic bursts can ... exhaust
// the mbuf pool. Thus, traffic bursts destined for one server process can
// lead to the delay and/or loss of packets destined for other sockets") —
// a second, lightly loaded socket on the same host starts losing packets.
// The bounded channel preserves traffic separation.
func EarlyDiscardContribution(opt Options) []AblationRow {
	run := func(unbounded bool) (poolHW int, probesLost int) {
		cm := core.DefaultCosts()
		if unbounded {
			cm.ChannelLimit = 1 << 20
		}
		sys := System{Name: "SOFT-LRP", Arch: core.ArchSoftLRP, Costs: func() *core.CostModel { return cm }}
		r := newRig(sys, 2, opt)
		defer r.shutdown()
		server := r.hosts[1]
		// Overloaded socket: a slow consumer flooded at 16k pkts/s.
		sink := &app.BlastSink{Host: server, Port: 7, PerPktCompute: 60}
		sink.Start()
		src := &app.BlastSource{
			Net: r.nw, Src: AddrA, Dst: AddrB, SPort: 9, DPort: 7,
			Size: 14, Rate: 16000, Poisson: true, Rng: sim.NewRand(opt.Seed + 4),
		}
		src.Start()
		// Lightly loaded victim socket: a ping-pong pair.
		pps := &app.PingPongServer{Host: server, Port: 8}
		pps.Start()
		iters := 400
		if opt.Quick {
			iters = 150
		}
		ppc := &app.PingPongClient{
			Host: r.hosts[0], ServerAddr: AddrB, ServerPort: 8,
			MsgSize: 14, Iterations: iters, ReplyTimeout: 20 * sim.Millisecond,
			StartAfter: sim.Second,          // let the blast backlog build
			Interval:   2 * sim.Millisecond, // spread probes over the run
		}
		ppc.Start()
		r.eng.RunFor(sim.Second + sim.Time(iters)*25*sim.Millisecond)
		return server.Pool.Stats().HighWater, ppc.Lost
	}
	type edResult struct{ hw, lost int }
	vals := runner.Map(opt.pool(), []bool{false, true}, func(_ int, unbounded bool) edResult {
		var hw, lost int
		labeled("SOFT-LRP", func() { hw, lost = run(unbounded) })
		return edResult{hw, lost}
	})
	hwBounded, lostBounded := vals[0].hw, vals[0].lost
	hwUnbounded, lostUnbounded := vals[1].hw, vals[1].lost
	opt.progress(fmt.Sprintf("ablation early-discard: bounded %d mbufs / %d probes lost, unbounded %d mbufs / %d probes lost",
		hwBounded, lostBounded, hwUnbounded, lostUnbounded))
	return []AblationRow{
		{Experiment: "early-discard", Variant: "bounded-channel", Metric: "mbuf_highwater", Value: float64(hwBounded)},
		{Experiment: "early-discard", Variant: "bounded-channel", Metric: "probes_lost", Value: float64(lostBounded)},
		{Experiment: "early-discard", Variant: "unbounded-channel", Metric: "mbuf_highwater", Value: float64(hwUnbounded)},
		{Experiment: "early-discard", Variant: "unbounded-channel", Metric: "probes_lost", Value: float64(lostUnbounded)},
	}
}

// FilterDemuxAblation measures the related-work configuration: SOFT-LRP
// with an interpreted packet-filter demultiplexer instead of the
// hand-coded function. "Since the systems described in the literature use
// interpreted packet filters for demultiplexing, the overhead is likely
// to be high, and livelock protection poor." With a linear filter scan,
// demux cost grows with the number of bound endpoints, so a host with
// many sockets loses the overload stability LRP's cheap demux provides.
func FilterDemuxAblation(opt Options) []AblationRow {
	rate := int64(14000)
	run := func(filter bool, decoys int) float64 {
		cm := core.DefaultCosts()
		eng := sim.NewEngine()
		nw := netsim.New(eng)
		opt.applyFaults(nw)
		server := core.NewHost(eng, nw, core.Config{
			Name: "server", Addr: AddrB, Arch: core.ArchSoftLRP,
			Costs: cm, FilterDemux: filter,
		})
		defer server.Shutdown()
		// Decoy endpoints bound before the target: the interpreted scan
		// pays for each of them on every packet.
		server.K.Spawn("decoys", 0, func(p *kernel.Proc) {
			for i := 0; i < decoys; i++ {
				s := server.NewUDPSocket(p)
				_ = server.BindUDP(s, uint16(2000+i))
			}
			p.Sleep(&kernel.WaitQ{})
		})
		sink := &app.BlastSink{Host: server, Port: 7, PerPktCompute: 10}
		eng.At(1000, sink.Start)
		src := &app.BlastSource{
			Net: nw, Src: AddrA, Dst: AddrB, SPort: 9, DPort: 7,
			Size: 14, Rate: rate, Poisson: true,
			Rng: sim.NewRand(opt.Seed + uint64(decoys) + 7),
		}
		src.Start()
		dur := 2 * sim.Second
		if opt.Quick {
			dur = sim.Second
		}
		eng.RunFor(500 * sim.Millisecond)
		sink.Received.Reset(eng.Now())
		eng.RunFor(dur)
		return sink.Received.Rate(eng.Now())
	}
	decoyCounts := []int{0, 16, 48}
	// Cell order matches the serial loop: (decoys, hand), (decoys, interp).
	cells := runner.Cross(decoyCounts, []bool{false, true})
	vals := runner.Map(opt.pool(), cells, func(_ int, c runner.Pair[int, bool]) float64 {
		var v float64
		labeled("SOFT-LRP", func() { v = run(c.B, c.A) })
		return v
	})
	var rows []AblationRow
	for i, decoys := range decoyCounts {
		hand, filt := vals[2*i], vals[2*i+1]
		rows = append(rows,
			AblationRow{Experiment: "filter-demux", Variant: fmt.Sprintf("hand-coded/%d-sockets", decoys+1), Metric: "delivered_pps", Value: hand},
			AblationRow{Experiment: "filter-demux", Variant: fmt.Sprintf("interpreted/%d-sockets", decoys+1), Metric: "delivered_pps", Value: filt},
		)
		opt.progress(fmt.Sprintf("ablation filter-demux sockets=%d: hand=%.0f interp=%.0f", decoys+1, hand, filt))
	}
	return rows
}
