package exp

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
)

// Fig4Point is one point of Figure 4: "Latency with concurrent load"
// (ping-pong RTT and lost probes vs background blast rate).
type Fig4Point = results.Fig4Point

// Fig4Series is one system's curve.
type Fig4Series = results.Fig4Series

func fig4Rates(quick bool) []int64 {
	if quick {
		return []int64{0, 4000, 8000, 14000}
	}
	return []int64{0, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000,
		10000, 12000, 14000, 16000, 18000, 20000}
}

// Fig4 reproduces the concurrent-load latency experiment: "The client,
// running on machine A, ping-pongs a short UDP message with a server
// process (ping-pong server) running on machine B. At the same time,
// machine C transmits UDP packets at a fixed rate to a separate server
// process (blast server) on machine B." Low-priority spinners keep the
// CPUs out of the idle loop, per the paper's methodology.
func Fig4(opt Options) []Fig4Series {
	spec := runner.Spec[System, int64, Fig4Point]{
		Name:    "fig4",
		Systems: LatencySystems(),
		Axis:    fig4Rates(opt.Quick),
		Run: func(sys System, rate int64) Fig4Point {
			var rtt float64
			var lost int
			labeled(sys.Name, func() { rtt, lost = fig4Run(sys, rate, opt) })
			opt.progress(fmt.Sprintf("fig4: %s bg=%d rtt=%.0f lost=%d", sys.Name, rate, rtt, lost))
			return Fig4Point{BgRate: rate, RTTMicros: rtt, Lost: lost}
		},
	}
	grid := runner.Sweep(opt.pool(), spec)
	out := make([]Fig4Series, len(grid))
	for i, pts := range grid {
		out[i] = Fig4Series{System: spec.Systems[i].Name, Points: pts}
	}
	return out
}

func fig4Run(sys System, bgRate int64, opt Options) (float64, int) {
	r := newRig(sys, 3, opt)
	defer r.shutdown()
	hostA, hostB := r.hosts[0], r.hosts[1]

	// Background spinners on the ping-pong machines (nice +20).
	app.Spinner(hostA, "spin-A")
	app.Spinner(hostB, "spin-B")

	// Blast server on B, fed from machine C.
	sink := &app.BlastSink{
		Host:           hostB,
		Port:           9,
		PerPktCompute:  10,
		DisturbPenalty: hostB.CM.RxDisturbPenalty,
	}
	sink.Start()
	if bgRate > 0 {
		src := &app.BlastSource{
			Net:     r.nw,
			Src:     AddrC,
			Dst:     AddrB,
			SPort:   9000,
			DPort:   9,
			Size:    14,
			Rate:    bgRate,
			Poisson: true,
			Rng:     sim.NewRand(opt.Seed + uint64(bgRate) + 3),
		}
		src.Start()
	}

	// Ping-pong pair.
	srv := &app.PingPongServer{Host: hostB, Port: 7}
	srv.Start()
	iters, warmup := 1500, 400
	if opt.Quick {
		iters = 250
	}
	cli := &app.PingPongClient{
		Host:         hostA,
		ServerAddr:   AddrB,
		ServerPort:   7,
		MsgSize:      14,
		Iterations:   iters,
		Warmup:       warmup,
		ReplyTimeout: 100 * sim.Millisecond,
	}
	cli.Start()

	// Let the background load reach steady state, then measure.
	limit := sim.Time(iters+warmup)*5*sim.Millisecond + 5*sim.Second
	r.eng.RunFor(limit)
	return cli.RTT.Mean(), cli.Lost
}
