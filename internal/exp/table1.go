package exp

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
)

// Table1Row reproduces one row of Table 1: "Throughput and Latency"
// (1-byte UDP ping-pong RTT; sliding-window UDP throughput with 8 KB
// datagrams; 24 MB TCP transfer with 32 KB socket buffers).
type Table1Row = results.Table1Row

// table1Metrics are Table 1's three measurements; each runs in its own
// world, so a parallel sweep spreads systems × metrics across workers.
var table1Metrics = []struct {
	Name string
	Fn   func(System, Options) float64
}{
	{"rtt", table1Latency},
	{"udp", table1UDP},
	{"tcp", table1TCP},
}

// Table1 measures round-trip latency, UDP throughput and TCP throughput
// for each system. "Its purpose is to demonstrate that the LRP
// architecture is competitive with traditional network subsystem
// implementations in terms of these basic performance criteria."
func Table1(opt Options) []Table1Row {
	systems := Table1Systems()
	cells := runner.Cross(systems, []int{0, 1, 2})
	vals := runner.Map(opt.pool(), cells, func(_ int, c runner.Pair[System, int]) float64 {
		m := table1Metrics[c.B]
		opt.progress("table1: " + c.A.Name + " " + m.Name)
		var v float64
		labeled(c.A.Name, func() { v = m.Fn(c.A, opt) })
		return v
	})
	rows := make([]Table1Row, len(systems))
	for i, sys := range systems {
		rows[i] = Table1Row{
			System:    sys.Name,
			RTTMicros: vals[i*3+0],
			UDPMbps:   vals[i*3+1],
			TCPMbps:   vals[i*3+2],
		}
	}
	return rows
}

// table1Latency ping-pongs a 1-byte message (paper: 10,000 iterations).
func table1Latency(sys System, opt Options) float64 {
	r := newRig(sys, 2, opt)
	defer r.shutdown()
	iters := 2000
	if opt.Quick {
		iters = 200
	}
	srv := &app.PingPongServer{Host: r.hosts[1], Port: 7}
	srv.Start()
	cli := &app.PingPongClient{
		Host:       r.hosts[0],
		ServerAddr: AddrB,
		ServerPort: 7,
		MsgSize:    1,
		Iterations: iters,
	}
	cli.Start()
	r.eng.RunFor(sim.Time(iters+10) * 10 * sim.Millisecond)
	if !cli.Done {
		// On a clean network UDP ping-pong never loses a probe, so an
		// incomplete run is a simulator bug. Under a -faultplan the plan
		// may legitimately eat probes; report the mean of what completed.
		if opt.FaultPlan == nil {
			panic(fmt.Sprintf("table1 latency: client incomplete (%d/%d)", cli.RTT.Count(), iters))
		}
	}
	return cli.RTT.Mean()
}

// table1UDP runs the sliding-window UDP throughput test.
func table1UDP(sys System, opt Options) float64 {
	r := newRig(sys, 2, opt)
	defer r.shutdown()
	measure := 4 * sim.Second
	warm := sim.Second
	if opt.Quick {
		measure, warm = sim.Second, 200*sim.Millisecond
	}
	rx := &app.UDPWindowReceiver{Host: r.hosts[1], Port: 9000}
	rx.Start()
	tx := &app.UDPWindowSender{
		Host:     r.hosts[0],
		PeerAddr: AddrB,
		PeerPort: 9000,
		Size:     8192,
		Window:   8,
	}
	tx.Start()
	r.eng.RunFor(warm)
	rx.Bytes.Reset(r.eng.Now())
	r.eng.RunFor(measure)
	return rx.Bytes.Rate(r.eng.Now()) * 8 / 1e6
}

// table1TCP transfers 24 MB with 32 KB buffers.
func table1TCP(sys System, opt Options) float64 {
	r := newRig(sys, 2, opt)
	defer r.shutdown()
	total := 24 << 20
	if opt.Quick {
		total = 4 << 20
	}
	x := &app.TCPTransfer{
		Server:     r.hosts[1],
		Client:     r.hosts[0],
		ServerAddr: AddrB,
		Port:       5001,
		TotalBytes: total,
	}
	x.Start()
	r.eng.RunFor(120 * sim.Second)
	if !x.Done {
		// A clean-network transfer always completes; under a -faultplan a
		// stalled transfer is the plan's doing, and ThroughputMbps
		// reports 0 for it.
		if opt.FaultPlan == nil {
			panic(fmt.Sprintf("table1 tcp: transfer incomplete (%d/%d bytes)", x.Received, total))
		}
	}
	return x.ThroughputMbps()
}
