package exp

// WAN: the Fig 3 overload story at internet fan-in scale. The paper
// measured receive livelock with one LAN client; here an aggregated
// population of a million modeled clients (internal/pop: a handful of
// stackless procs, not a process per client) offers open-loop load
// through multi-hop topologies (internal/topo) whose transit gateways
// run the same kernel architecture as the server. Under eager (BSD)
// processing the gateways are receive-livelock victims themselves, so
// the collapse compounds per hop; under LRP both the gateways and the
// server shed load early and goodput holds. Two cells additionally run
// per-hop impairment from the shipped scenario library, tying the
// fault pipeline into the topology layer.

import (
	"fmt"

	"lrp/internal/app"
	"lrp/internal/core"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/pop"
	"lrp/internal/results"
	"lrp/internal/runner"
	"lrp/internal/sim"
	"lrp/internal/topo"
	"lrp/scenarios"
)

// WANPoint and WANSeries alias the results row types.
type (
	WANPoint  = results.WANPoint
	WANSeries = results.WANSeries
)

// wanClients is the modeled client population behind each topology's
// edges: 2^20, the full synthetic identity space.
const wanClients = 1 << 20

// wanCell is one sweep cell: a topology, optionally impaired per hop by
// a named scenario.
type wanCell struct {
	topo     string
	impaired string
}

// wanCellList enumerates the sweep: the three clean topologies, then
// the long-haul chain under bursty WAN loss and the fan-in tree under
// datacenter incast congestion.
func wanCellList() []wanCell {
	return []wanCell{
		{topo: "1hop"},
		{topo: "chain3"},
		{topo: "tree16"},
		{topo: "chain3", impaired: "flaky-wan"},
		{topo: "tree16", impaired: "datacenter-incast"},
	}
}

// wanRates returns the offered-load axis (aggregate population rate,
// pkts/s). The server saturates near 8k pkt/s (fig3's cost model and
// per-packet compute), so the axis spans well past the cliff.
func wanRates(quick bool) []int64 {
	if quick {
		return []int64{4000, 10000, 16000}
	}
	return []int64{2000, 4000, 6000, 9000, 12000, 16000}
}

// wanSystems are the kernels compared: the gateways of every topology
// run the same architecture as the server, so the comparison covers the
// whole path, not just the endpoint.
func wanSystems() []System {
	return []System{
		{Name: "4.4 BSD", Arch: core.ArchBSD, Costs: core.DefaultCosts},
		{Name: "NI-LRP", Arch: core.ArchNILRP, Costs: core.DefaultCosts},
		{Name: "SOFT-LRP", Arch: core.ArchSoftLRP, Costs: core.DefaultCosts},
	}
}

// wanBuild constructs the cell's topology over a fresh world.
func wanBuild(cell wanCell, sys System, opt Options) (*sim.Engine, *topo.Topology) {
	eng := sim.NewEngine()
	nw := netsim.New(eng)
	opt.applyFaults(nw)
	spec := topo.Spec{
		Eng: eng,
		Net: nw,
		Make: func(name string, addr pkt.Addr) *core.Host {
			return core.NewHost(eng, nw, core.Config{
				Name: name, Addr: addr, Arch: sys.Arch, Costs: sys.Costs(),
			})
		},
	}
	var t *topo.Topology
	switch cell.topo {
	case "1hop":
		t = topo.Direct(spec)
	case "chain3":
		t = topo.Chain(spec, 2)
	case "tree16":
		t = topo.FanIn(spec, 4, 2)
	default:
		panic("wan: unknown topology " + cell.topo)
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return eng, t
}

// WAN runs the internet-scale sweep and returns one series per
// (topology cell, system) pair.
func WAN(opt Options) []WANSeries {
	cells := wanCellList()
	rates := wanRates(opt.Quick)
	type axis struct {
		ci int
		ri int
	}
	var ax []axis
	for ci := range cells {
		for ri := range rates {
			ax = append(ax, axis{ci, ri})
		}
	}
	spec := runner.Spec[System, axis, WANPoint]{
		Name:    "wan",
		Systems: wanSystems(),
		Axis:    ax,
		Run: func(sys System, a axis) WANPoint {
			cell, rate := cells[a.ci], rates[a.ri]
			var p WANPoint
			labeled(sys.Name, func() { p = wanPoint(sys, cell, rate, opt) })
			name := cell.topo
			if cell.impaired != "" {
				name += "+" + cell.impaired
			}
			opt.progress(fmt.Sprintf("wan: %s %s offered=%d goodput=%.0f srvdrops=%d gwdrops=%d",
				sys.Name, name, rate, p.GoodputPps, p.ServerDrops, p.GwDrops))
			return p
		},
	}
	grid := runner.Sweep(opt.pool(), spec)
	var out []WANSeries
	for ci, cell := range cells {
		for si, sys := range spec.Systems {
			s := WANSeries{
				Topology: cell.topo,
				System:   sys.Name,
				Clients:  wanClients,
				Procs:    wanProcs(cell.topo),
				Impaired: cell.impaired,
			}
			for ai, a := range ax {
				if a.ci == ci {
					s.Points = append(s.Points, grid[si][ai])
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// wanProcs is the number of stackless generator procs a topology's
// population aggregates into: one per edge attach point.
func wanProcs(topoName string) int {
	if topoName == "tree16" {
		return 16
	}
	return 1
}

// wanPoint measures one (system, cell, offered) world: aggregated
// populations on every edge, a blast sink on the server, forwarding
// gateways between.
func wanPoint(sys System, cell wanCell, offered int64, opt Options) WANPoint {
	eng, t := wanBuild(cell, sys, opt)
	defer t.Shutdown()
	if cell.impaired != "" {
		plan, err := scenarios.Load(cell.impaired)
		if err != nil {
			panic(err)
		}
		// Reseed per sweep point so adjacent offered-load cells do not
		// replay identical impairment sequences.
		plan.Seed ^= opt.Seed + uint64(offered)*0x9e3779b9
		if err := t.ImpairSegments(plan); err != nil {
			panic(err)
		}
	}

	sink := &app.BlastSink{
		Host:           t.Server,
		Port:           7,
		PerPktCompute:  10,
		DisturbPenalty: t.Server.CM.RxDisturbPenalty,
	}
	sink.Start()

	edges := t.Edges
	per := wanClients / len(edges)
	for i, e := range edges {
		cfg := pop.Config{
			Clients:    per,
			RatePps:    float64(offered) / float64(len(edges)),
			SizeMin:    14,
			SizeMax:    1400,
			SizeAlpha:  1.3,
			ClientBase: i * per,
			Seed:       opt.Seed + uint64(offered)*31 + uint64(i) + 0xA11,
		}
		if cell.impaired != "" {
			// Impaired cells exercise the population's full model:
			// flash-crowd modulation and connection churn on top of the
			// Poisson base load.
			cfg.FlashFactor = 3
			cfg.CalmMeanUs = 400 * sim.Millisecond
			cfg.FlashMeanUs = 100 * sim.Millisecond
			cfg.ChurnPerSec = 50
		}
		g := &pop.Population{
			Host:  e,
			Net:   t.Net,
			Src:   e.Addr,
			Dst:   t.Server.Addr,
			DPort: 7,
			Cfg:   cfg,
		}
		g.Start()
	}

	warm, measure := 500*sim.Millisecond, 2*sim.Second
	if opt.Quick {
		warm, measure = 200*sim.Millisecond, 600*sim.Millisecond
	}
	eng.RunFor(warm)
	sink.Received.Reset(eng.Now())
	preSrv := hostDrops(t.Server)
	var preGw, preFwd uint64
	for _, g := range t.Gateways {
		preGw += hostDrops(g)
		preFwd += g.ForwardStats().Forwarded
	}
	eng.RunFor(measure)
	p := WANPoint{
		OfferedPps:  offered,
		GoodputPps:  sink.Received.Rate(eng.Now()),
		ServerDrops: hostDrops(t.Server) - preSrv,
	}
	var gw, fwd uint64
	for _, g := range t.Gateways {
		gw += hostDrops(g)
		fwd += g.ForwardStats().Forwarded
	}
	p.GwDrops = gw - preGw
	p.Forwarded = fwd - preFwd
	return p
}
