package scenarios

import (
	"testing"

	"lrp/internal/fault"
)

func TestShippedScenariosParse(t *testing.T) {
	for _, name := range Names {
		p, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Segments) == 0 || p.Seed == 0 {
			t.Fatalf("%s: degenerate plan %+v", name, p)
		}
		// A shipped plan must compile into a pipeline.
		if _, err := fault.New(p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := Load("no-such"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
