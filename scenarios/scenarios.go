// Package scenarios ships the named fault-plan library: serialized
// fault.Plan JSON files usable both from the command line
// (`lrpbench -faultplan scenarios/flaky-wan.json`) and by name from the
// experiment drivers (the wan verb's impaired cells). The files are the
// source of truth; this package embeds them so in-tree consumers are
// independent of the working directory.
package scenarios

import (
	_ "embed"
	"fmt"

	"lrp/internal/fault"
)

//go:embed flaky-wan.json
var flakyWAN []byte

//go:embed datacenter-incast.json
var datacenterIncast []byte

// Names lists the shipped scenarios in canonical order.
var Names = []string{"flaky-wan", "datacenter-incast"}

// Load parses the named scenario. "flaky-wan" is a lossy long-haul
// segment: bursty Gilbert-Elliott loss, sub-millisecond jitter and
// occasional reordering. "datacenter-incast" is a congested aggregation
// segment: steady tail drops, brief total outages from buffer overruns,
// and rare duplicates.
func Load(name string) (fault.Plan, error) {
	switch name {
	case "flaky-wan":
		return fault.ParsePlan(flakyWAN)
	case "datacenter-incast":
		return fault.ParsePlan(datacenterIncast)
	}
	return fault.Plan{}, fmt.Errorf("scenarios: unknown scenario %q (have %v)", name, Names)
}
