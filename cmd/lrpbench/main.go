// Command lrpbench regenerates the tables and figures of the LRP paper
// (Druschel & Banga, OSDI '96) from the simulated reproduction.
//
// Usage:
//
//	lrpbench [-quick] [-seed N] [-v] table1|fig3|mlfrr|fig4|table2|fig5|all
//
// Each experiment prints the same rows or series the paper reports;
// EXPERIMENTS.md records a side-by-side comparison with the published
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lrp/internal/exp"
	"lrp/internal/plot"
)

func main() {
	quick := flag.Bool("quick", false, "shorter runs (smoke test)")
	seed := flag.Uint64("seed", 1, "traffic generator seed")
	verbose := flag.Bool("v", false, "print progress")
	flag.BoolVar(&doPlot, "plot", false, "render ASCII charts for the figures")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lrpbench [-quick] [-seed N] [-v] table1|fig3|mlfrr|fig4|table2|fig5|ablations|media|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	opt := exp.Options{Quick: *quick, Seed: *seed}
	if *verbose {
		opt.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	which := strings.ToLower(flag.Arg(0))
	run := map[string]func(exp.Options){
		"table1":    table1,
		"fig3":      fig3,
		"mlfrr":     mlfrr,
		"fig4":      fig4,
		"table2":    table2,
		"fig5":      fig5,
		"ablations": ablations,
		"media":     media,
	}
	if which == "all" {
		for _, name := range []string{"table1", "fig3", "mlfrr", "fig4", "table2", "fig5", "ablations", "media"} {
			run[name](opt)
			fmt.Println()
		}
		return
	}
	fn, ok := run[which]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	fn(opt)
}

var doPlot bool

func table1(opt exp.Options) {
	fmt.Println("Table 1: Throughput and Latency")
	fmt.Println("(paper: RTT 1006/855/840/864 µs; UDP 64/82/92/86 Mbps; TCP 63/69/67/66 Mbps)")
	fmt.Printf("%-22s %14s %16s %16s\n", "System", "RTT (µs)", "UDP (Mbit/s)", "TCP (Mbit/s)")
	for _, r := range exp.Table1(opt) {
		fmt.Printf("%-22s %12.0f %16.1f %16.1f\n", r.System, r.RTTMicros, r.UDPMbps, r.TCPMbps)
	}
}

func fig3(opt exp.Options) {
	fmt.Println("Figure 3: Throughput versus offered load (14-byte UDP, pkts/s)")
	series := exp.Fig3(opt)
	if doPlot {
		c := plot.Chart{Title: "Figure 3", XLabel: "offered rate (pkts/s)", YLabel: "delivered (pkts/s)", Width: 64, Height: 18}
		for _, s := range series {
			var xs, ys []float64
			for _, p := range s.Points {
				xs = append(xs, float64(p.Offered))
				ys = append(ys, p.Delivered)
			}
			c.Add(s.System, xs, ys)
		}
		fmt.Println(c.Render())
	}
	fmt.Printf("%-10s", "offered")
	for _, s := range series {
		fmt.Printf(" %12s", s.System)
	}
	fmt.Println()
	for i := range series[0].Points {
		fmt.Printf("%-10d", series[0].Points[i].Offered)
		for _, s := range series {
			fmt.Printf(" %12.0f", s.Points[i].Delivered)
		}
		fmt.Println()
	}
}

func mlfrr(opt exp.Options) {
	fmt.Println("Maximum Loss-Free Receive Rate (paper: SOFT-LRP 9210 vs BSD 6380, +44%)")
	fmt.Printf("%-14s %10s %12s\n", "System", "MLFRR", "Peak (pkt/s)")
	rows := exp.MLFRR(opt)
	for _, r := range rows {
		fmt.Printf("%-14s %10d %12.0f\n", r.System, r.MLFRR, r.Peak)
	}
}

func fig4(opt exp.Options) {
	fmt.Println("Figure 4: Latency with concurrent load (µs round trip; * = probes lost)")
	series := exp.Fig4(opt)
	if doPlot {
		c := plot.Chart{Title: "Figure 4", XLabel: "background rate (pkts/s)", YLabel: "round trip (µs)", Width: 64, Height: 18}
		for _, s := range series {
			var xs, ys []float64
			for _, p := range s.Points {
				if p.RTTMicros > 0 {
					xs = append(xs, float64(p.BgRate))
					ys = append(ys, p.RTTMicros)
				}
			}
			c.Add(s.System, xs, ys)
		}
		fmt.Println(c.Render())
	}
	fmt.Printf("%-10s", "bg pkt/s")
	for _, s := range series {
		fmt.Printf(" %12s", s.System)
	}
	fmt.Println()
	for i := range series[0].Points {
		fmt.Printf("%-10d", series[0].Points[i].BgRate)
		for _, s := range series {
			mark := ""
			if s.Points[i].Lost > 0 {
				mark = "*"
			}
			fmt.Printf(" %11.0f%1s", s.Points[i].RTTMicros, mark)
		}
		fmt.Println()
	}
}

func table2(opt exp.Options) {
	fmt.Println("Table 2: Synthetic RPC Server Workload")
	fmt.Println("(paper Fast: elapsed 49.7/34.6/38.7 s; shares 23-26% BSD vs 29-33% LRP)")
	fmt.Printf("%-8s %-12s %16s %14s %14s\n", "RPC", "System", "Worker (s)", "RPCs/s", "Worker share")
	for _, r := range exp.Table2(opt) {
		fmt.Printf("%-8s %-12s %16.1f %14.0f %13.1f%%\n",
			r.Workload, r.System, r.WorkerElapsed, r.ServerRPCRate, r.WorkerShare*100)
	}
}

func fig5(opt exp.Options) {
	fmt.Println("Figure 5: HTTP Server Throughput under SYN flood (transfers/s)")
	fmt.Println("(paper: BSD livelocks near 10k SYN/s; LRP keeps ~50% at 20k)")
	series := exp.Fig5(opt)
	if doPlot {
		c := plot.Chart{Title: "Figure 5", XLabel: "SYN rate (pkts/s)", YLabel: "HTTP transfers/s", Width: 64, Height: 18}
		for _, s := range series {
			var xs, ys []float64
			for _, p := range s.Points {
				xs = append(xs, float64(p.SYNRate))
				ys = append(ys, p.HTTPPerSec)
			}
			c.Add(s.System, xs, ys)
		}
		fmt.Println(c.Render())
	}
	fmt.Printf("%-10s", "SYN/s")
	for _, s := range series {
		fmt.Printf(" %12s", s.System)
	}
	fmt.Println()
	for i := range series[0].Points {
		fmt.Printf("%-10d", series[0].Points[i].SYNRate)
		for _, s := range series {
			fmt.Printf(" %12.1f", s.Points[i].HTTPPerSec)
		}
		fmt.Println()
	}
}

func ablations(opt exp.Options) {
	fmt.Println("Ablations: isolating LRP's individual design choices")
	fmt.Printf("%-16s %-20s %-22s %10s\n", "experiment", "variant", "metric", "value")
	for _, r := range exp.Ablations(opt) {
		fmt.Printf("%-16s %-20s %-22s %10.1f\n", r.Experiment, r.Variant, r.Metric, r.Value)
	}
}

func media(opt exp.Options) {
	fmt.Println("Media stream (30 fps) delivery jitter vs background blast")
	fmt.Printf("%-12s %10s %14s %12s\n", "System", "bg pkt/s", "mean jitter µs", "p99 µs")
	for _, r := range exp.MediaJitter(opt) {
		fmt.Printf("%-12s %10d %14.0f %12d\n", r.System, r.BgRate, r.MeanJitterUs, r.P99JitterUs)
	}
}
