// Command lrpbench regenerates the tables and figures of the LRP paper
// (Druschel & Banga, OSDI '96) from the simulated reproduction, and
// checks the paper's qualitative shapes against a fresh run.
//
// Usage:
//
//	lrpbench [-quick] [-seed N] [-v] [-plot] [-parallel N] [-json] [-out FILE] \
//	         [-cpuprofile FILE] [-memprofile FILE] \
//	         table1|fig3|mlfrr|fig4|table2|fig5|ablations|media|all|check
//
// Each experiment prints the same rows or series the paper reports;
// EXPERIMENTS.md records a side-by-side comparison with the published
// numbers. Sweep points run over a bounded worker pool (-parallel);
// every point simulates in a private deterministic world, so output is
// byte-identical at any parallelism.
//
// -json replaces the text tables on stdout with the versioned JSON
// suite (internal/results schema); -out FILE additionally saves that
// JSON suite to FILE, whatever stdout carries. The check verb runs all
// eight experiments, evaluates every paper-shape assertion (ordering
// of systems, BSD's livelock collapse, NI-LRP's flat overload curve,
// fairness bands, traffic separation), and exits non-zero if any fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"lrp/internal/exp"
	"lrp/internal/plot"
	"lrp/internal/results"
)

var doPlot bool

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "shorter runs (smoke test)")
	seed := flag.Uint64("seed", 1, "traffic generator seed")
	verbose := flag.Bool("v", false, "print progress")
	parallel := flag.Int("parallel", 0, "max concurrent simulation worlds (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit the JSON result suite on stdout instead of text tables")
	outPath := flag.String("out", "", "also write the JSON result suite to FILE")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to FILE")
	memProfile := flag.String("memprofile", "", "write a heap profile to FILE when the run completes")
	flag.BoolVar(&doPlot, "plot", false, "render ASCII charts for the figures")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lrpbench [-quick] [-seed N] [-v] [-plot] [-parallel N] [-json] [-out FILE] [-cpuprofile FILE] [-memprofile FILE] table1|fig3|mlfrr|fig4|table2|fig5|ablations|media|all|check\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	opt := exp.Options{Quick: *quick, Seed: *seed, Parallel: *parallel}
	if opt.Parallel <= 0 {
		opt.Parallel = runtime.GOMAXPROCS(0)
	}
	if *verbose {
		// Progress arrives from concurrent sweep workers; serialize it.
		var mu sync.Mutex
		opt.Progress = func(s string) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintln(os.Stderr, s)
		}
	}

	which := strings.ToLower(flag.Arg(0))
	var names []string
	check := false
	switch which {
	case "all":
		names = exp.Experiments
	case "check":
		names = exp.Experiments
		check = true
	default:
		names = []string{which}
	}

	suite := results.NewSuite(opt.Seed, opt.Quick)
	for _, name := range names {
		e, err := exp.RunExperiment(name, opt)
		if err != nil {
			flag.Usage()
			return 2
		}
		suite.Add(e)
		if !*jsonOut && !check {
			printExperiment(os.Stdout, e)
			if len(names) > 1 {
				fmt.Println()
			}
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := suite.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *jsonOut && !check {
		if err := suite.Encode(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if check {
		return report(os.Stdout, suite, *jsonOut)
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lrpbench:", err)
	os.Exit(1)
}

// report prints the shape-check verdict and returns the exit code.
func report(w io.Writer, suite *results.Suite, asJSON bool) int {
	violations := results.CheckSuite(suite)
	if violations == nil {
		violations = []results.Violation{} // `"violations": []`, not null
	}
	if asJSON {
		out := struct {
			Schema     int                 `json:"schema"`
			Pass       bool                `json:"pass"`
			Violations []results.Violation `json:"violations"`
		}{results.SchemaVersion, len(violations) == 0, violations}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, string(b))
	} else {
		for _, v := range violations {
			fmt.Fprintln(w, "FAIL", v)
		}
		if len(violations) == 0 {
			fmt.Fprintf(w, "ok: all paper-shape assertions hold across %d experiments\n", len(suite.Experiments))
		} else {
			fmt.Fprintf(w, "%d shape violation(s)\n", len(violations))
		}
	}
	if len(violations) > 0 {
		return 1
	}
	return 0
}

func printExperiment(w io.Writer, e results.Experiment) {
	switch e.Name {
	case "table1":
		printTable1(w, e.Table1)
	case "fig3":
		printFig3(w, e.Fig3)
	case "mlfrr":
		printMLFRR(w, e.MLFRR)
	case "fig4":
		printFig4(w, e.Fig4)
	case "table2":
		printTable2(w, e.Table2)
	case "fig5":
		printFig5(w, e.Fig5)
	case "ablations":
		printAblations(w, e.Ablations)
	case "media":
		printMedia(w, e.Media)
	}
}

func printTable1(w io.Writer, rows []results.Table1Row) {
	fmt.Fprintln(w, "Table 1: Throughput and Latency")
	fmt.Fprintln(w, "(paper: RTT 1006/855/840/864 µs; UDP 64/82/92/86 Mbps; TCP 63/69/67/66 Mbps)")
	fmt.Fprintf(w, "%-22s %14s %16s %16s\n", "System", "RTT (µs)", "UDP (Mbit/s)", "TCP (Mbit/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %12.0f %16.1f %16.1f\n", r.System, r.RTTMicros, r.UDPMbps, r.TCPMbps)
	}
}

func printFig3(w io.Writer, series []results.Fig3Series) {
	fmt.Fprintln(w, "Figure 3: Throughput versus offered load (14-byte UDP, pkts/s)")
	if doPlot {
		c := plot.Chart{Title: "Figure 3", XLabel: "offered rate (pkts/s)", YLabel: "delivered (pkts/s)", Width: 64, Height: 18}
		for _, s := range series {
			var xs, ys []float64
			for _, p := range s.Points {
				xs = append(xs, float64(p.Offered))
				ys = append(ys, p.Delivered)
			}
			c.Add(s.System, xs, ys)
		}
		fmt.Fprintln(w, c.Render())
	}
	fmt.Fprintf(w, "%-10s", "offered")
	for _, s := range series {
		fmt.Fprintf(w, " %12s", s.System)
	}
	fmt.Fprintln(w)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-10d", series[0].Points[i].Offered)
		for _, s := range series {
			fmt.Fprintf(w, " %12.0f", s.Points[i].Delivered)
		}
		fmt.Fprintln(w)
	}
}

func printMLFRR(w io.Writer, rows []results.MLFRRRow) {
	fmt.Fprintln(w, "Maximum Loss-Free Receive Rate (paper: SOFT-LRP 9210 vs BSD 6380, +44%)")
	fmt.Fprintf(w, "%-14s %10s %12s\n", "System", "MLFRR", "Peak (pkt/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10d %12.0f\n", r.System, r.MLFRR, r.Peak)
	}
}

func printFig4(w io.Writer, series []results.Fig4Series) {
	fmt.Fprintln(w, "Figure 4: Latency with concurrent load (µs round trip; * = probes lost)")
	if doPlot {
		c := plot.Chart{Title: "Figure 4", XLabel: "background rate (pkts/s)", YLabel: "round trip (µs)", Width: 64, Height: 18}
		for _, s := range series {
			var xs, ys []float64
			for _, p := range s.Points {
				if p.RTTMicros > 0 {
					xs = append(xs, float64(p.BgRate))
					ys = append(ys, p.RTTMicros)
				}
			}
			c.Add(s.System, xs, ys)
		}
		fmt.Fprintln(w, c.Render())
	}
	fmt.Fprintf(w, "%-10s", "bg pkt/s")
	for _, s := range series {
		fmt.Fprintf(w, " %12s", s.System)
	}
	fmt.Fprintln(w)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-10d", series[0].Points[i].BgRate)
		for _, s := range series {
			mark := ""
			if s.Points[i].Lost > 0 {
				mark = "*"
			}
			fmt.Fprintf(w, " %11.0f%1s", s.Points[i].RTTMicros, mark)
		}
		fmt.Fprintln(w)
	}
}

func printTable2(w io.Writer, rows []results.Table2Row) {
	fmt.Fprintln(w, "Table 2: Synthetic RPC Server Workload")
	fmt.Fprintln(w, "(paper Fast: elapsed 49.7/34.6/38.7 s; shares 23-26% BSD vs 29-33% LRP)")
	fmt.Fprintf(w, "%-8s %-12s %16s %14s %14s\n", "RPC", "System", "Worker (s)", "RPCs/s", "Worker share")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-12s %16.1f %14.0f %13.1f%%\n",
			r.Workload, r.System, r.WorkerElapsed, r.ServerRPCRate, r.WorkerShare*100)
	}
}

func printFig5(w io.Writer, series []results.Fig5Series) {
	fmt.Fprintln(w, "Figure 5: HTTP Server Throughput under SYN flood (transfers/s)")
	fmt.Fprintln(w, "(paper: BSD livelocks near 10k SYN/s; LRP keeps ~50% at 20k)")
	if doPlot {
		c := plot.Chart{Title: "Figure 5", XLabel: "SYN rate (pkts/s)", YLabel: "HTTP transfers/s", Width: 64, Height: 18}
		for _, s := range series {
			var xs, ys []float64
			for _, p := range s.Points {
				xs = append(xs, float64(p.SYNRate))
				ys = append(ys, p.HTTPPerSec)
			}
			c.Add(s.System, xs, ys)
		}
		fmt.Fprintln(w, c.Render())
	}
	fmt.Fprintf(w, "%-10s", "SYN/s")
	for _, s := range series {
		fmt.Fprintf(w, " %12s", s.System)
	}
	fmt.Fprintln(w)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-10d", series[0].Points[i].SYNRate)
		for _, s := range series {
			fmt.Fprintf(w, " %12.1f", s.Points[i].HTTPPerSec)
		}
		fmt.Fprintln(w)
	}
}

func printAblations(w io.Writer, rows []results.AblationRow) {
	fmt.Fprintln(w, "Ablations: isolating LRP's individual design choices")
	fmt.Fprintf(w, "%-16s %-20s %-22s %10s\n", "experiment", "variant", "metric", "value")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-20s %-22s %10.1f\n", r.Experiment, r.Variant, r.Metric, r.Value)
	}
}

func printMedia(w io.Writer, rows []results.MediaRow) {
	fmt.Fprintln(w, "Media stream (30 fps) delivery jitter vs background blast")
	fmt.Fprintf(w, "%-12s %10s %14s %12s\n", "System", "bg pkt/s", "mean jitter µs", "p99 µs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %14.0f %12d\n", r.System, r.BgRate, r.MeanJitterUs, r.P99JitterUs)
	}
}
