// Command lrpbench regenerates the tables and figures of the LRP paper
// (Druschel & Banga, OSDI '96) from the simulated reproduction, and
// checks the paper's qualitative shapes against a fresh run.
//
// Usage:
//
//	lrpbench [-quick] [-seed N] [-v] [-plot] [-parallel N] [-json] [-out FILE] \
//	         [-faultplan FILE] [-cpuprofile FILE] [-memprofile FILE] \
//	         table1|fig3|mlfrr|fig4|table2|fig5|ablations|media|faults|smp|wan|all|check
//
// Each experiment prints the same rows or series the paper reports;
// EXPERIMENTS.md records a side-by-side comparison with the published
// numbers. All requested experiments run through exp.RunSuite: with
// -parallel > 1 every independent simulation world across the whole
// suite draws from one bounded worker pool, and results are assembled
// in canonical order. Every world is a private deterministic
// simulation, so output is byte-identical at any parallelism. -v
// reports per-experiment wall-clock timings and a final wall-vs-user
// CPU utilization summary on stderr.
//
// -json replaces the text tables on stdout with the versioned JSON
// suite (internal/results schema); -out FILE additionally saves that
// JSON suite to FILE, whatever stdout carries. The check verb runs all
// eight experiments plus the smp sweep, evaluates every paper-shape
// assertion (ordering of systems, BSD's livelock collapse, NI-LRP's
// flat overload curve, fairness bands, traffic separation, multi-core
// scaling), and exits non-zero if any fail.
//
// The faults verb runs the internal/fault robustness curves — goodput,
// p99 latency, and victim-CPU share for every architecture under each
// impairment class (bursty loss, reordering, duplication, corruption,
// jitter, link flaps, DMA-ring overruns, spurious interrupts, mbuf-pool
// pressure), plus TCP goodput versus reordering depth. It is not part
// of `all`, so the archived canonical suite output stays byte-stable.
//
// The smp verb runs the multi-core scaling sweep: single-queue versus
// RSS multi-queue receive for BSD, SOFT-LRP, and NI-LRP across 1, 2,
// and 4 simulated CPUs. Like faults, it is standalone and not part of
// `all`.
//
// The wan verb runs the internet-scale sweep: a million modeled clients
// (aggregated into a handful of stackless generator procs per topology,
// internal/pop) offer open-loop load through multi-hop chains and
// fan-in trees (internal/topo) whose transit gateways run the same
// kernel architecture as the server, with two cells additionally
// impaired per hop by shipped scenarios (scenarios/*.json). Like faults
// and smp, it is standalone and not part of `all`.
//
// -faultplan FILE loads a fault-injection plan (the scenarios/*.json
// format) and applies it network-wide to every simulation world the
// requested experiments build: any experiment under any impairment.
// Runs with a plan are still fully deterministic, but do not compare
// them against the archived clean outputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"lrp/internal/exp"
	"lrp/internal/fault"
	"lrp/internal/render"
	"lrp/internal/results"
)

var doPlot bool

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "shorter runs (smoke test)")
	seed := flag.Uint64("seed", 1, "traffic generator seed")
	verbose := flag.Bool("v", false, "print progress, per-experiment timings, and a utilization summary")
	parallel := flag.Int("parallel", 0, "max concurrent simulation worlds (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit the JSON result suite on stdout instead of text tables")
	outPath := flag.String("out", "", "also write the JSON result suite to FILE")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to FILE")
	memProfile := flag.String("memprofile", "", "write a heap profile to FILE when the run completes")
	faultPlan := flag.String("faultplan", "", "apply a fault plan (scenarios/*.json format) network-wide to every world")
	flag.BoolVar(&doPlot, "plot", false, "render ASCII charts for the figures")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lrpbench [-quick] [-seed N] [-v] [-plot] [-parallel N] [-json] [-out FILE] [-faultplan FILE] [-cpuprofile FILE] [-memprofile FILE] table1|fig3|mlfrr|fig4|table2|fig5|ablations|media|faults|smp|wan|all|check\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	opt := exp.Options{Quick: *quick, Seed: *seed, Parallel: *parallel}
	if opt.Parallel <= 0 {
		opt.Parallel = runtime.GOMAXPROCS(0)
	}
	if *faultPlan != "" {
		data, err := os.ReadFile(*faultPlan)
		if err != nil {
			fatal(err)
		}
		plan, err := fault.ParsePlan(data)
		if err != nil {
			fatal(err)
		}
		opt.FaultPlan = &plan
	}
	if *verbose {
		// Progress and the timing callbacks arrive from concurrent
		// experiment drivers and sweep workers; serialize them.
		var mu sync.Mutex
		opt.Progress = func(s string) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintln(os.Stderr, s)
		}
		started := make(map[string]time.Time)
		opt.ExpStart = func(name string) {
			mu.Lock()
			defer mu.Unlock()
			started[name] = time.Now()
		}
		opt.ExpDone = func(name string) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "lrpbench: %-9s done in %.2fs\n", name, time.Since(started[name]).Seconds())
		}
	}

	which := strings.ToLower(flag.Arg(0))
	var names []string
	check := false
	switch which {
	case "all":
		names = exp.Experiments
	case "check":
		// The canonical eight plus the standalone smp and wan sweeps:
		// CheckSuite holds the scaling and internet-scale curves to their
		// shapes whenever they are present, and check is where every
		// assertion should run.
		names = append(append([]string{}, exp.Experiments...), "smp", "wan")
		check = true
	default:
		names = []string{which}
	}

	start := time.Now()
	userStart := userCPUSeconds()
	suite, err := exp.RunSuite(opt, names...)
	if err != nil {
		flag.Usage()
		return 2
	}
	if *verbose {
		wall := time.Since(start).Seconds()
		user := userCPUSeconds() - userStart
		util := 0.0
		if wall > 0 {
			util = user / wall
		}
		fmt.Fprintf(os.Stderr, "lrpbench: suite wall %.2fs, user CPU %.2fs, utilization %.2fx (parallel=%d)\n",
			wall, user, util, opt.Parallel)
	}
	if !*jsonOut && !check {
		for _, e := range suite.Experiments {
			render.Experiment(os.Stdout, e, render.Options{Plot: doPlot})
			if len(names) > 1 {
				fmt.Println()
			}
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := suite.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *jsonOut && !check {
		if err := suite.Encode(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if check {
		return report(os.Stdout, suite, *jsonOut)
	}
	return 0
}

// userCPUSeconds reads the runtime's cumulative user-CPU estimate: the
// -v utilization summary compares it against wall time as a proxy for
// "how busy the worker pool kept the machine". On a single-CPU host the
// ratio tops out near 1.0x no matter the -parallel value.
func userCPUSeconds() float64 {
	sample := []metrics.Sample{{Name: "/cpu/classes/user:cpu-seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return sample[0].Value.Float64()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lrpbench:", err)
	os.Exit(1)
}

// report prints the shape-check verdict and returns the exit code.
func report(w io.Writer, suite *results.Suite, asJSON bool) int {
	violations := results.CheckSuite(suite)
	if violations == nil {
		violations = []results.Violation{} // `"violations": []`, not null
	}
	if asJSON {
		out := struct {
			Schema     int                 `json:"schema"`
			Pass       bool                `json:"pass"`
			Violations []results.Violation `json:"violations"`
		}{results.SchemaVersion, len(violations) == 0, violations}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, string(b))
	} else {
		for _, v := range violations {
			fmt.Fprintln(w, "FAIL", v)
		}
		if len(violations) == 0 {
			fmt.Fprintf(w, "ok: all paper-shape assertions hold across %d experiments\n", len(suite.Experiments))
		} else {
			fmt.Fprintf(w, "%d shape violation(s)\n", len(violations))
		}
	}
	if len(violations) > 0 {
		return 1
	}
	return 0
}
