// Command lrplint runs the repository's static-analysis suite: the
// determinism, mbufown, eventhandle, hotalloc, and stepfn analyzers (see
// internal/analysis and the "Static analysis & invariants" section of
// DESIGN.md). It exits nonzero when any finding survives, so CI can gate
// on it:
//
//	go run ./cmd/lrplint ./...
//
// Patterns are Go package patterns relative to the module root; with no
// arguments the whole module is checked. Test files are not analyzed —
// they deliberately exercise protocol violations.
package main

import (
	"flag"
	"fmt"
	"os"

	"lrp/internal/analysis/lrplint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lrplint [packages]\n\nRuns the lrp static-analysis suite:\n")
		for _, a := range lrplint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrplint:", err)
		os.Exit(2)
	}
	n, err := lrplint.Run(wd, flag.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrplint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "lrplint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
