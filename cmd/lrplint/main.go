// Command lrplint runs the repository's static-analysis suite: the
// determinism, mbufown, eventhandle, hotalloc, stepfn, and stepreq
// analyzers (see internal/analysis and the "Static analysis & invariants"
// sections of DESIGN.md). It exits nonzero when any finding survives, so
// CI can gate on it:
//
//	go run ./cmd/lrplint ./...
//
// Modes:
//
//	lrplint -json ./...                 findings as JSON (the baseline schema)
//	lrplint -baseline lint_baseline.json ./...
//	                                    fail only on findings not in the baseline
//	lrplint -why sendFrags ./...        print call-graph paths from every
//	                                    //lrp:hotpath root to a function, for
//	                                    triaging transitive diagnostics
//
// Patterns are Go package patterns relative to the module root; with no
// arguments the whole module is checked. Test files are not analyzed —
// they deliberately exercise protocol violations. To regenerate the
// baseline after triaging findings: lrplint -json ./... > lint_baseline.json
package main

import (
	"flag"
	"fmt"
	"os"

	"lrp/internal/analysis/lrplint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON (same schema as the baseline file)")
	baseline := flag.String("baseline", "", "baseline `file`; only findings absent from it count toward the exit status")
	why := flag.String("why", "", "print call-graph paths from //lrp:hotpath roots to `symbol` and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lrplint [flags] [packages]\n\nRuns the lrp static-analysis suite:\n")
		for _, a := range lrplint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrplint:", err)
		os.Exit(2)
	}
	if *why != "" {
		if err := lrplint.Why(wd, *why, flag.Args(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lrplint:", err)
			os.Exit(2)
		}
		return
	}
	n, err := lrplint.Run(wd, flag.Args(), os.Stdout, lrplint.Options{
		JSON:     *jsonOut,
		Baseline: *baseline,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrplint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "lrplint: %d new finding(s)\n", n)
		os.Exit(1)
	}
}
