// Command lrptrace runs a small canned scenario with event tracing
// enabled and dumps the packet-path and scheduler event log — a debugging
// lens on what the simulated kernel actually does with each packet.
//
// Usage:
//
//	lrptrace [-arch bsd|nilrp|softlrp|earlydemux|polling] [-n events]
package main

import (
	"flag"
	"fmt"
	"os"

	"lrp/internal/core"
	"lrp/internal/kernel"
	"lrp/internal/netsim"
	"lrp/internal/pkt"
	"lrp/internal/sim"
)

func main() {
	archName := flag.String("arch", "softlrp", "architecture: bsd|nilrp|softlrp|earlydemux|polling")
	n := flag.Int("n", 200, "event log capacity")
	flag.Parse()

	archs := map[string]core.Arch{
		"bsd":        core.ArchBSD,
		"nilrp":      core.ArchNILRP,
		"softlrp":    core.ArchSoftLRP,
		"earlydemux": core.ArchEarlyDemux,
		"polling":    core.ArchPolling,
	}
	arch, ok := archs[*archName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown arch %q\n", *archName)
		os.Exit(2)
	}

	eng := sim.NewEngine()
	nw := netsim.New(eng)
	serverAddr := pkt.IP(10, 0, 0, 2)
	clientAddr := pkt.IP(10, 0, 0, 1)
	server := core.NewHost(eng, nw, core.Config{Name: "server", Addr: serverAddr, Arch: arch})
	client := core.NewHost(eng, nw, core.Config{Name: "client", Addr: clientAddr, Arch: arch})
	defer server.Shutdown()
	defer client.Shutdown()
	log := server.EnableTrace(*n)

	// Scenario: an echo exchange, then a small burst that overflows the
	// receiver, so the trace shows dispatch, demux, delivery and drops.
	server.K.Spawn("echo", 0, func(p *kernel.Proc) {
		s := server.NewUDPSocket(p)
		_ = server.BindUDP(s, 7)
		for {
			d, err := server.RecvFrom(p, s)
			if err != nil {
				return
			}
			_ = server.SendTo(p, s, d.Src, d.SPort, d.Data)
			p.Compute(500) // slow consumer: the burst will overflow queues
		}
	})
	client.K.Spawn("client", 0, func(p *kernel.Proc) {
		s := client.NewUDPSocket(p)
		_ = client.BindUDP(s, 0)
		_ = client.SendTo(p, s, serverAddr, 7, []byte("ping"))
		_, _, _ = client.RecvFromTimeout(p, s, 100*sim.Millisecond)
	})
	eng.At(5*sim.Millisecond, func() {
		for i := 0; i < 100; i++ {
			nw.Inject(pkt.UDPPacket(clientAddr, serverAddr, 99, 7, uint16(i), 64, make([]byte, 14), true))
		}
	})
	eng.RunFor(100 * sim.Millisecond)

	fmt.Printf("=== %s: server event trace ===\n", arch)
	fmt.Print(log.Dump())
	st := server.Stats()
	fmt.Printf("\ndrops: channel=%d sockq=%d ipq=%d early=%d\n",
		st.ChannelDrops, st.SockQDrops, st.IPQDrops, st.EarlyDrops)
}
