// Package lrp's root benchmarks regenerate every table and figure of the
// paper's evaluation, one benchmark per published result, plus ablation
// benches for the design choices DESIGN.md calls out. Each benchmark runs
// a scaled-down (Quick) version of the corresponding experiment and
// reports the headline metric via b.ReportMetric, so `go test -bench=.`
// doubles as a summary of the reproduction:
//
//	BenchmarkTable1/...   RTT, UDP and TCP throughput per system
//	BenchmarkFig3/...     delivered pkts/s at peak and at 20k offered
//	BenchmarkMLFRR        SOFT-LRP vs BSD maximum loss-free rate
//	BenchmarkFig4/...     ping-pong RTT under background blast
//	BenchmarkTable2/...   worker completion time and CPU share
//	BenchmarkFig5/...     HTTP throughput under SYN flood
//
// Full-length runs (paper durations) are behind `lrpbench` (cmd/lrpbench).
package lrp_test

import (
	"fmt"
	"strings"
	"testing"

	"lrp/internal/exp"
)

func opts() exp.Options { return exp.Options{Quick: true, Seed: 1} }

// unit builds a whitespace-free metric unit like "NI-LRP_peak_pps".
func unit(system, suffix string) string {
	r := strings.NewReplacer(" ", "", "(", "", ")", "", ",", "")
	return r.Replace(system) + "_" + suffix
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table1(opts())
		for _, r := range rows {
			b.ReportMetric(r.RTTMicros, unit(r.System, "rtt_µs"))
			b.ReportMetric(r.UDPMbps, unit(r.System, "udp_Mbps"))
			b.ReportMetric(r.TCPMbps, unit(r.System, "tcp_Mbps"))
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := exp.Fig3(opts())
		for _, s := range series {
			peak, last := 0.0, 0.0
			for _, p := range s.Points {
				if p.Delivered > peak {
					peak = p.Delivered
				}
				last = p.Delivered
			}
			b.ReportMetric(peak, unit(s.System, "peak_pps"))
			b.ReportMetric(last, unit(s.System, "at20k_pps"))
		}
	}
}

func BenchmarkMLFRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range exp.MLFRR(opts()) {
			b.ReportMetric(float64(r.MLFRR), unit(r.System, "mlfrr_pps"))
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range exp.Fig4(opts()) {
			base := s.Points[0].RTTMicros
			worst := base
			for _, p := range s.Points {
				if p.RTTMicros > worst {
					worst = p.RTTMicros
				}
			}
			b.ReportMetric(base, unit(s.System, "rtt0_µs"))
			b.ReportMetric(worst, unit(s.System, "rttworst_µs"))
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range exp.Table2(opts()) {
			b.ReportMetric(r.WorkerElapsed, unit(r.Workload+r.System, "worker_s"))
			b.ReportMetric(r.WorkerShare*100, unit(r.Workload+r.System, "share_pct"))
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range exp.Fig5(opts()) {
			base := s.Points[0].HTTPPerSec
			last := s.Points[len(s.Points)-1].HTTPPerSec
			b.ReportMetric(base, unit(s.System, "http0_tps"))
			b.ReportMetric(last, unit(s.System, "http20k_tps"))
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range exp.Ablations(opts()) {
			b.ReportMetric(r.Value, unit(r.Experiment+"_"+r.Variant, r.Metric))
		}
	}
}

func BenchmarkMediaJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range exp.MediaJitter(opts()) {
			b.ReportMetric(r.MeanJitterUs, unit(r.System, fmt.Sprintf("jitter_bg%d_µs", r.BgRate)))
		}
	}
}

// BenchmarkSuite measures end-to-end wall clock for the whole quick
// suite at a given worker-pool width — the speedup curve of the sweep
// runner itself rather than any one paper result.
func BenchmarkSuite(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := opts()
				opt.Parallel = workers
				if _, err := exp.RunSuite(opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
